//! Lane words: the machine words the packed backend packs coverage lanes
//! into.
//!
//! The original packed engine was hard-wired to `u64` — 64 `(placement,
//! background)` lanes per sensitization pass. This module abstracts the word
//! behind the sealed [`LaneWord`] trait and provides wider blocks built from
//! `[u64; N]` arrays ([`W128`], [`W256`]), so one pass over a march test can
//! carry 128 or 256 lanes and the chunk count (and with it per-chunk dispatch
//! overhead, thread hand-offs and snapshot traffic) drops proportionally.
//! The `[u64; N]` representation keeps every operation branch-free and
//! auto-vectorizable; a `W512` alias or a `std::simd` carrier can slot in
//! later by adding one more [`LaneWord`] impl.
//!
//! [`LaneWidth`] is the user-facing policy knob (`auto | 64 | 128 | 256`)
//! threaded through `ExecPolicy`, `CoverageConfig` and the CLI `--lane-width`
//! flag; `auto` picks the narrowest width that holds the enumerated lane
//! count.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};
use std::str::FromStr;

use crate::SimulationError;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl<const N: usize> Sealed for super::WideWord<N> {}
}

/// A fixed-width machine word holding one packed coverage lane per bit.
///
/// Sealed: the packed engine's correctness argument (lane-local bitwise
/// semantics, byte-identical across widths) is proven per implementation, so
/// the set of carriers is closed — `u64` plus the `[u64; N]` blocks defined
/// here. All operations are branch-free on the lane dimension.
pub trait LaneWord:
    sealed::Sealed
    + Copy
    + Eq
    + fmt::Debug
    + Send
    + Sync
    + 'static
    + Not<Output = Self>
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + BitXorAssign
{
    /// Number of lanes (bits) the word carries.
    const BITS: usize;
    /// Number of 64-bit limbs backing the word (`BITS / 64`).
    const LIMBS: usize;
    /// The all-zero word.
    const ZERO: Self;
    /// The all-one word.
    const ALL: Self;

    /// The mask with the low `n` lanes set, for `1 ≤ n ≤ Self::BITS`.
    ///
    /// This is the shared width-generic helper behind every lane-mask
    /// construction (simulator lane masks, merge compaction, candidate
    /// pools): the old `u64` code special-cased `n == 64` because `1 << 64`
    /// overflows; the boundary now lives in exactly one place per width.
    fn full_mask(n: usize) -> Self;
    /// The word with only lane `lane` set.
    fn bit(lane: usize) -> Self;
    /// Whether lane `lane` is set.
    fn test_bit(&self, lane: usize) -> bool;
    /// Whether no lane is set.
    fn is_zero(&self) -> bool;
    /// Number of set lanes.
    fn count_ones(&self) -> u32;
    /// Index of the lowest set lane (`Self::BITS` when empty).
    fn trailing_zeros(&self) -> u32;
    /// Clears the lowest set lane (`x &= x - 1` on scalar words).
    fn clear_lowest_bit(&mut self);
    /// The `index`-th 64-bit limb (lanes `64*index .. 64*index + 64`).
    ///
    /// Limb access is what keeps per-lane scans width-independent: iterating
    /// the set lanes of a wide word limb by limb costs `O(1)` per lane, where
    /// building per-lane `W::bit` masks would cost `O(LIMBS)` per lane.
    fn limb(&self, index: usize) -> u64;
    /// Mutable access to the `index`-th 64-bit limb.
    fn limb_mut(&mut self, index: usize) -> &mut u64;
}

impl LaneWord for u64 {
    const BITS: usize = 64;
    const LIMBS: usize = 1;
    const ZERO: Self = 0;
    const ALL: Self = u64::MAX;

    #[inline]
    fn full_mask(n: usize) -> Self {
        debug_assert!((1..=<Self as LaneWord>::BITS).contains(&n));
        if n == <Self as LaneWord>::BITS {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    #[inline]
    fn bit(lane: usize) -> Self {
        1u64 << lane
    }

    #[inline]
    fn test_bit(&self, lane: usize) -> bool {
        self & (1u64 << lane) != 0
    }

    #[inline]
    fn is_zero(&self) -> bool {
        *self == 0
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        u64::count_ones(*self)
    }

    #[inline]
    fn trailing_zeros(&self) -> u32 {
        u64::trailing_zeros(*self)
    }

    #[inline]
    fn clear_lowest_bit(&mut self) {
        *self &= self.wrapping_sub(1);
    }

    #[inline]
    fn limb(&self, index: usize) -> u64 {
        debug_assert_eq!(index, 0);
        let _ = index;
        *self
    }

    #[inline]
    fn limb_mut(&mut self, index: usize) -> &mut u64 {
        debug_assert_eq!(index, 0);
        let _ = index;
        self
    }
}

/// A lane block of `N` 64-bit limbs: `64 * N` packed lanes per word. Lane `i`
/// lives in bit `i % 64` of limb `i / 64`. All bitwise operations are
/// limb-wise loops over fixed-size arrays, which the compiler unrolls and
/// vectorizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideWord<const N: usize>([u64; N]);

/// A 128-lane block (`[u64; 2]`).
pub type W128 = WideWord<2>;
/// A 256-lane block (`[u64; 4]`).
pub type W256 = WideWord<4>;

impl<const N: usize> fmt::Debug for WideWord<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WideWord<{N}>[")?;
        // Most-significant limb first, like an integer literal.
        for (index, limb) in self.0.iter().rev().enumerate() {
            if index > 0 {
                write!(f, "_")?;
            }
            write!(f, "{limb:016x}")?;
        }
        write!(f, "]")
    }
}

impl<const N: usize> Not for WideWord<N> {
    type Output = Self;
    #[inline]
    fn not(mut self) -> Self {
        for limb in &mut self.0 {
            *limb = !*limb;
        }
        self
    }
}

macro_rules! wide_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $assign_op:tt) => {
        impl<const N: usize> $trait for WideWord<N> {
            type Output = Self;
            #[inline]
            fn $method(mut self, rhs: Self) -> Self {
                self.$assign_method(rhs);
                self
            }
        }
        impl<const N: usize> $assign_trait for WideWord<N> {
            #[inline]
            fn $assign_method(&mut self, rhs: Self) {
                for (limb, other) in self.0.iter_mut().zip(rhs.0.iter()) {
                    *limb $assign_op *other;
                }
            }
        }
    };
}

wide_binop!(BitAnd, bitand, BitAndAssign, bitand_assign, &=);
wide_binop!(BitOr, bitor, BitOrAssign, bitor_assign, |=);
wide_binop!(BitXor, bitxor, BitXorAssign, bitxor_assign, ^=);

impl<const N: usize> LaneWord for WideWord<N> {
    const BITS: usize = 64 * N;
    const LIMBS: usize = N;
    const ZERO: Self = WideWord([0; N]);
    const ALL: Self = WideWord([u64::MAX; N]);

    #[inline]
    fn full_mask(n: usize) -> Self {
        debug_assert!(n >= 1 && n <= Self::BITS);
        let mut limbs = [0u64; N];
        let full = n / 64;
        for limb in limbs.iter_mut().take(full) {
            *limb = u64::MAX;
        }
        if full < N && !n.is_multiple_of(64) {
            limbs[full] = (1u64 << (n % 64)) - 1;
        }
        WideWord(limbs)
    }

    #[inline]
    fn bit(lane: usize) -> Self {
        debug_assert!(lane < Self::BITS);
        let mut limbs = [0u64; N];
        limbs[lane / 64] = 1u64 << (lane % 64);
        WideWord(limbs)
    }

    #[inline]
    fn test_bit(&self, lane: usize) -> bool {
        debug_assert!(lane < Self::BITS);
        self.0[lane / 64] & (1u64 << (lane % 64)) != 0
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0.iter().all(|&limb| limb == 0)
    }

    #[inline]
    fn count_ones(&self) -> u32 {
        self.0.iter().map(|limb| limb.count_ones()).sum()
    }

    #[inline]
    fn trailing_zeros(&self) -> u32 {
        let mut zeros = 0u32;
        for limb in &self.0 {
            if *limb != 0 {
                return zeros + limb.trailing_zeros();
            }
            zeros += 64;
        }
        zeros
    }

    #[inline]
    fn clear_lowest_bit(&mut self) {
        for limb in &mut self.0 {
            if *limb != 0 {
                *limb &= limb.wrapping_sub(1);
                return;
            }
        }
    }

    #[inline]
    fn limb(&self, index: usize) -> u64 {
        self.0[index]
    }

    #[inline]
    fn limb_mut(&mut self, index: usize) -> &mut u64 {
        &mut self.0[index]
    }
}

/// Broadcasts a scalar bit over every lane of a word.
#[inline]
pub(crate) fn broadcast<W: LaneWord>(bit: sram_fault_model::Bit) -> W {
    match bit {
        sram_fault_model::Bit::Zero => W::ZERO,
        sram_fault_model::Bit::One => W::ALL,
    }
}

/// The lanes of `values` matching a sensitizing condition: `Zero` selects the
/// lanes holding 0, `One` the lanes holding 1, `DontCare` every lane.
#[inline]
pub(crate) fn condition_mask<W: LaneWord>(condition: sram_fault_model::CellValue, values: W) -> W {
    match condition {
        sram_fault_model::CellValue::Zero => !values,
        sram_fault_model::CellValue::One => values,
        sram_fault_model::CellValue::DontCare => W::ALL,
    }
}

/// The packed-backend lane width: how many coverage lanes one machine word
/// carries through each sensitization/effects pass.
///
/// `Auto` (the default) picks the narrowest width that holds the enumerated
/// lane count of each target, so small scopes keep the cheap 64-bit word and
/// large scopes (exhaustive decoder spaces, 1k-cell memories) pack 256 lanes
/// per pass. Reports are byte-identical across widths — the width only
/// changes how lanes are grouped into chunks, never any lane's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// Pick the narrowest width that holds the lane count (the default).
    #[default]
    Auto,
    /// One `u64` word: 64 lanes per pass.
    W64,
    /// A `[u64; 2]` block: 128 lanes per pass.
    W128,
    /// A `[u64; 4]` block: 256 lanes per pass.
    W256,
}

impl LaneWidth {
    /// Every selectable width, narrowest first.
    pub const ALL: [LaneWidth; 4] = [
        LaneWidth::Auto,
        LaneWidth::W64,
        LaneWidth::W128,
        LaneWidth::W256,
    ];

    /// Resolves `Auto` against an enumerated lane count; explicit widths
    /// resolve to themselves.
    #[must_use]
    pub fn resolve(self, lanes: usize) -> LaneWidth {
        match self {
            LaneWidth::Auto => {
                if lanes <= 64 {
                    LaneWidth::W64
                } else if lanes <= 128 {
                    LaneWidth::W128
                } else {
                    LaneWidth::W256
                }
            }
            explicit => explicit,
        }
    }

    /// The number of lanes per word, or `None` for `Auto`.
    #[must_use]
    pub fn lanes_per_word(self) -> Option<usize> {
        match self {
            LaneWidth::Auto => None,
            LaneWidth::W64 => Some(64),
            LaneWidth::W128 => Some(128),
            LaneWidth::W256 => Some(256),
        }
    }

    /// The stable CLI/JSON name of the width.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LaneWidth::Auto => "auto",
            LaneWidth::W64 => "64",
            LaneWidth::W128 => "128",
            LaneWidth::W256 => "256",
        }
    }
}

impl fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for LaneWidth {
    type Err = SimulationError;

    fn from_str(name: &str) -> Result<Self, Self::Err> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(LaneWidth::Auto),
            "64" | "w64" => Ok(LaneWidth::W64),
            "128" | "w128" => Ok(LaneWidth::W128),
            "256" | "w256" => Ok(LaneWidth::W256),
            other => Err(SimulationError::UnknownLaneWidth(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask_boundary<W: LaneWord>() {
        // The n == width boundary — the case the old code special-cased
        // twice — must produce the all-ones word, and n == width - 1 must
        // clear exactly the top lane.
        assert_eq!(W::full_mask(W::BITS), W::ALL);
        let almost = W::full_mask(W::BITS - 1);
        assert!(!almost.test_bit(W::BITS - 1));
        assert_eq!(almost.count_ones() as usize, W::BITS - 1);
        assert_eq!(almost | W::bit(W::BITS - 1), W::ALL);
        // And the low boundary.
        assert_eq!(W::full_mask(1), W::bit(0));
    }

    #[test]
    fn full_mask_covers_the_width_boundary_on_every_word() {
        full_mask_boundary::<u64>();
        full_mask_boundary::<W128>();
        full_mask_boundary::<W256>();
    }

    fn bit_scan_roundtrip<W: LaneWord>() {
        for lane in [0usize, 1, 63, W::BITS / 2, W::BITS - 1] {
            let word = W::bit(lane);
            assert!(word.test_bit(lane));
            assert_eq!(word.count_ones(), 1);
            assert_eq!(word.trailing_zeros() as usize, lane);
            let mut cleared = word;
            cleared.clear_lowest_bit();
            assert!(cleared.is_zero());
        }
        assert_eq!(W::ZERO.trailing_zeros() as usize, W::BITS);
        assert!(W::ZERO.is_zero());
        assert!(!W::ALL.is_zero());
        assert_eq!(W::ALL.count_ones() as usize, W::BITS);
    }

    #[test]
    fn bit_operations_roundtrip_on_every_word() {
        bit_scan_roundtrip::<u64>();
        bit_scan_roundtrip::<W128>();
        bit_scan_roundtrip::<W256>();
    }

    #[test]
    fn wide_words_mirror_u64_limbwise() {
        // A W128 built from two u64 patterns behaves like the pair.
        let low = 0x0123_4567_89ab_cdefu64;
        let high = 0xfedc_ba98_7654_3210u64;
        let word = W128::full_mask(64) & W128::ALL;
        assert_eq!(word.count_ones(), 64);
        let mut composed = W128::ZERO;
        for lane in 0..64 {
            if low.test_bit(lane) {
                composed |= W128::bit(lane);
            }
            if high.test_bit(lane) {
                composed |= W128::bit(64 + lane);
            }
        }
        assert_eq!(composed.count_ones(), low.count_ones() + high.count_ones());
        assert_eq!(composed.trailing_zeros(), low.trailing_zeros());
        assert_eq!((!composed & composed), W128::ZERO);
        assert_eq!((composed ^ composed), W128::ZERO);
        assert_eq!((composed | !composed), W128::ALL);
    }

    #[test]
    fn lane_width_resolution_and_parsing() {
        assert_eq!(LaneWidth::default(), LaneWidth::Auto);
        assert_eq!(LaneWidth::Auto.resolve(1), LaneWidth::W64);
        assert_eq!(LaneWidth::Auto.resolve(64), LaneWidth::W64);
        assert_eq!(LaneWidth::Auto.resolve(65), LaneWidth::W128);
        assert_eq!(LaneWidth::Auto.resolve(128), LaneWidth::W128);
        assert_eq!(LaneWidth::Auto.resolve(129), LaneWidth::W256);
        assert_eq!(LaneWidth::Auto.resolve(20_480), LaneWidth::W256);
        assert_eq!(LaneWidth::W64.resolve(20_480), LaneWidth::W64);
        assert_eq!(LaneWidth::W128.resolve(1), LaneWidth::W128);

        for width in LaneWidth::ALL {
            assert_eq!(width.name().parse::<LaneWidth>().unwrap(), width);
            assert_eq!(width.to_string(), width.name());
        }
        assert_eq!("W256".parse::<LaneWidth>().unwrap(), LaneWidth::W256);
        assert!(matches!(
            "512".parse::<LaneWidth>(),
            Err(SimulationError::UnknownLaneWidth(name)) if name == "512"
        ));
        assert_eq!(LaneWidth::Auto.lanes_per_word(), None);
        assert_eq!(LaneWidth::W256.lanes_per_word(), Some(256));
    }
}
