//! Fault instances: fault primitives and linked faults bound to concrete cells.

use std::fmt;

use sram_fault_model::{DecoderFault, FaultPrimitive, LinkTopology, LinkedFault, SensitizingSite};

use crate::SimulationError;

/// A fault primitive bound to concrete cell addresses of the simulated memory.
///
/// # Examples
///
/// ```
/// use sram_fault_model::Ffm;
/// use sram_sim::InjectedFault;
///
/// let tf = &Ffm::TransitionFault.fault_primitives()[0];
/// let fault = InjectedFault::single_cell(tf.clone(), 3, 8)?;
/// assert_eq!(fault.victim(), 3);
/// assert_eq!(fault.aggressor(), None);
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    primitive: FaultPrimitive,
    aggressor: Option<usize>,
    victim: usize,
}

impl InjectedFault {
    /// Injects a single-cell primitive on cell `victim` of a memory with `cells`
    /// cells.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::AddressOutOfRange`] if `victim >= cells`;
    /// * [`SimulationError::MissingCells`] if the primitive is a coupling fault.
    pub fn single_cell(
        primitive: FaultPrimitive,
        victim: usize,
        cells: usize,
    ) -> Result<InjectedFault, SimulationError> {
        if primitive.is_coupling() {
            return Err(SimulationError::MissingCells(
                "coupling primitive requires an aggressor cell".to_string(),
            ));
        }
        check_address(victim, cells)?;
        Ok(InjectedFault {
            primitive,
            aggressor: None,
            victim,
        })
    }

    /// Injects a coupling primitive with the given `aggressor` and `victim` cells.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::AddressOutOfRange`] if either address is out of range;
    /// * [`SimulationError::OverlappingCells`] if the addresses coincide;
    /// * [`SimulationError::MissingCells`] if the primitive is single-cell.
    pub fn coupling(
        primitive: FaultPrimitive,
        aggressor: usize,
        victim: usize,
        cells: usize,
    ) -> Result<InjectedFault, SimulationError> {
        if !primitive.is_coupling() {
            return Err(SimulationError::MissingCells(
                "single-cell primitive does not take an aggressor cell".to_string(),
            ));
        }
        check_address(aggressor, cells)?;
        check_address(victim, cells)?;
        if aggressor == victim {
            return Err(SimulationError::OverlappingCells { address: victim });
        }
        Ok(InjectedFault {
            primitive,
            aggressor: Some(aggressor),
            victim,
        })
    }

    /// The injected fault primitive.
    #[must_use]
    pub fn primitive(&self) -> &FaultPrimitive {
        &self.primitive
    }

    /// The aggressor cell address, if the primitive is a coupling fault.
    #[must_use]
    pub fn aggressor(&self) -> Option<usize> {
        self.aggressor
    }

    /// The victim cell address.
    #[must_use]
    pub fn victim(&self) -> usize {
        self.victim
    }

    /// The cell the sensitizing operation must target, or `None` for state faults.
    #[must_use]
    pub fn sensitizing_cell(&self) -> Option<usize> {
        match self.primitive.sensitizing_site() {
            SensitizingSite::Victim => Some(self.victim),
            SensitizingSite::Aggressor => self.aggressor,
            SensitizingSite::None => None,
        }
    }
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.aggressor {
            Some(aggressor) => write!(f, "{} @ a={aggressor}, v={}", self.primitive, self.victim),
            None => write!(f, "{} @ v={}", self.primitive, self.victim),
        }
    }
}

/// The cell assignment of a linked fault instance.
///
/// Which fields are required depends on the [`LinkTopology`]:
///
/// | topology | `aggressor_first` | `aggressor_second` |
/// |----------|-------------------|--------------------|
/// | LF1      | –                 | –                  |
/// | LF2av    | aggressor of FP1  | –                  |
/// | LF2va    | –                 | aggressor of FP2   |
/// | LF2aa    | shared aggressor  | (same as first)    |
/// | LF3      | aggressor of FP1  | aggressor of FP2   |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceCells {
    /// The aggressor cell of the first fault primitive, when it is a coupling fault.
    pub aggressor_first: Option<usize>,
    /// The aggressor cell of the second fault primitive, when it is a coupling
    /// fault.
    pub aggressor_second: Option<usize>,
    /// The shared victim cell.
    pub victim: usize,
}

impl InstanceCells {
    /// Cell assignment for a single-cell (LF1) instance.
    #[must_use]
    pub const fn single(victim: usize) -> InstanceCells {
        InstanceCells {
            aggressor_first: None,
            aggressor_second: None,
            victim,
        }
    }

    /// Cell assignment for a two-cell instance with one aggressor used by whichever
    /// component needs it.
    #[must_use]
    pub const fn pair(aggressor: usize, victim: usize) -> InstanceCells {
        InstanceCells {
            aggressor_first: Some(aggressor),
            aggressor_second: Some(aggressor),
            victim,
        }
    }

    /// Cell assignment for a three-cell (LF3) instance.
    #[must_use]
    pub const fn triple(
        aggressor_first: usize,
        aggressor_second: usize,
        victim: usize,
    ) -> InstanceCells {
        InstanceCells {
            aggressor_first: Some(aggressor_first),
            aggressor_second: Some(aggressor_second),
            victim,
        }
    }

    /// All distinct cell addresses used by the assignment.
    #[must_use]
    pub fn cells(&self) -> Vec<usize> {
        let mut cells = vec![self.victim];
        cells.extend(self.aggressor_first);
        cells.extend(self.aggressor_second);
        cells.sort_unstable();
        cells.dedup();
        cells
    }
}

impl fmt::Display for InstanceCells {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v={}", self.victim)?;
        if let Some(a1) = self.aggressor_first {
            write!(f, ", a1={a1}")?;
        }
        if let Some(a2) = self.aggressor_second {
            write!(f, ", a2={a2}")?;
        }
        Ok(())
    }
}

/// A linked fault bound to concrete cells, ready to be injected into a
/// [`FaultSimulator`](crate::FaultSimulator).
///
/// # Examples
///
/// ```
/// use sram_fault_model::FaultList;
/// use sram_sim::{InstanceCells, LinkedFaultInstance};
///
/// let fault = FaultList::list_2().linked()[0].clone();
/// let instance = LinkedFaultInstance::new(fault, InstanceCells::single(3), 8)?;
/// assert_eq!(instance.components().len(), 2);
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedFaultInstance {
    fault: LinkedFault,
    cells: InstanceCells,
    components: Vec<InjectedFault>,
}

impl LinkedFaultInstance {
    /// Binds `fault` to the cells given by `cells` on a memory with `memory_cells`
    /// cells.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::MissingCells`] if the assignment does not provide the
    ///   aggressors required by the fault's topology;
    /// * [`SimulationError::OverlappingCells`] if cells that must be distinct
    ///   coincide (aggressors and victim, or the two aggressors of an LF3);
    /// * [`SimulationError::AddressOutOfRange`] for out-of-range addresses.
    pub fn new(
        fault: LinkedFault,
        cells: InstanceCells,
        memory_cells: usize,
    ) -> Result<LinkedFaultInstance, SimulationError> {
        let topology = fault.topology();
        let first_aggressor = match topology {
            LinkTopology::Lf1 | LinkTopology::Lf2SingleThenCoupling => None,
            LinkTopology::Lf2CouplingThenSingle
            | LinkTopology::Lf2SharedAggressor
            | LinkTopology::Lf3 => Some(cells.aggressor_first.ok_or_else(|| {
                SimulationError::MissingCells(format!(
                    "topology {topology} requires an aggressor for the first primitive"
                ))
            })?),
        };
        let second_aggressor = match topology {
            LinkTopology::Lf1 | LinkTopology::Lf2CouplingThenSingle => None,
            LinkTopology::Lf2SingleThenCoupling | LinkTopology::Lf3 => {
                Some(cells.aggressor_second.ok_or_else(|| {
                    SimulationError::MissingCells(format!(
                        "topology {topology} requires an aggressor for the second primitive"
                    ))
                })?)
            }
            LinkTopology::Lf2SharedAggressor => {
                let shared = cells
                    .aggressor_first
                    .or(cells.aggressor_second)
                    .ok_or_else(|| {
                        SimulationError::MissingCells(
                            "shared-aggressor topology requires an aggressor cell".to_string(),
                        )
                    })?;
                Some(shared)
            }
        };

        if topology == LinkTopology::Lf3 {
            if let (Some(a1), Some(a2)) = (first_aggressor, second_aggressor) {
                if a1 == a2 {
                    return Err(SimulationError::OverlappingCells { address: a1 });
                }
            }
        }

        let components = vec![
            build_component(
                fault.first().clone(),
                first_aggressor,
                cells.victim,
                memory_cells,
            )?,
            build_component(
                fault.second().clone(),
                second_aggressor,
                cells.victim,
                memory_cells,
            )?,
        ];

        Ok(LinkedFaultInstance {
            fault,
            cells,
            components,
        })
    }

    /// The linked fault being instantiated.
    #[must_use]
    pub fn fault(&self) -> &LinkedFault {
        &self.fault
    }

    /// The cell assignment.
    #[must_use]
    pub fn cells(&self) -> InstanceCells {
        self.cells
    }

    /// The two injected fault primitives (first, second).
    #[must_use]
    pub fn components(&self) -> &[InjectedFault] {
        &self.components
    }
}

impl fmt::Display for LinkedFaultInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.fault, self.cells)
    }
}

/// An address-decoder fault class bound to concrete addresses of the simulated
/// memory, ready to be injected into a
/// [`FaultSimulator`](crate::FaultSimulator).
///
/// The *primary* address is the anchor of the class (the dead address of
/// *no cell accessed*, the redirected address of *no address maps*, the
/// fanning address of *multiple cells accessed*, the doubly-mapped cell of
/// *multiple addresses map*); the *partner* is the second address of the pair
/// classes. The pair [`source`](DecoderFaultInstance::source) /
/// [`destination`](DecoderFaultInstance::destination) exposes the resulting
/// decode perturbation: operations issued to `source` reach `destination`
/// (instead of, or — for the fan-out class — in addition to, their own cell).
///
/// # Examples
///
/// ```
/// use sram_fault_model::DecoderFault;
/// use sram_sim::{DecoderFaultInstance, InstanceCells};
///
/// // Address 3 is redirected onto cell 5: cell 3 is never accessed.
/// let af = DecoderFaultInstance::new(
///     DecoderFault::NoAddressMaps,
///     InstanceCells::pair(5, 3),
///     8,
/// )?;
/// assert_eq!(af.source(), 3);
/// assert_eq!(af.destination(), Some(5));
/// # Ok::<(), sram_sim::SimulationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecoderFaultInstance {
    fault: DecoderFault,
    primary: usize,
    partner: Option<usize>,
}

impl DecoderFaultInstance {
    /// Binds `fault` to the addresses of `cells` (primary = `victim`,
    /// partner = `aggressor_first`) on a memory with `memory_cells` cells.
    ///
    /// # Errors
    ///
    /// * [`SimulationError::AddressOutOfRange`] for out-of-range addresses;
    /// * [`SimulationError::MissingCells`] if a pair class lacks its partner;
    /// * [`SimulationError::OverlappingCells`] if primary and partner coincide.
    pub fn new(
        fault: DecoderFault,
        cells: InstanceCells,
        memory_cells: usize,
    ) -> Result<DecoderFaultInstance, SimulationError> {
        check_address(cells.victim, memory_cells)?;
        let partner = if fault.involves_partner() {
            let partner = cells.aggressor_first.ok_or_else(|| {
                SimulationError::MissingCells(format!(
                    "decoder fault class `{fault}` requires a partner address"
                ))
            })?;
            check_address(partner, memory_cells)?;
            if partner == cells.victim {
                return Err(SimulationError::OverlappingCells {
                    address: cells.victim,
                });
            }
            Some(partner)
        } else {
            None
        };
        Ok(DecoderFaultInstance {
            fault,
            primary: cells.victim,
            partner,
        })
    }

    /// The decoder fault class being instantiated.
    #[must_use]
    pub fn fault(&self) -> DecoderFault {
        self.fault
    }

    /// The primary address of the instance.
    #[must_use]
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// The partner address, for the pair classes.
    #[must_use]
    pub fn partner(&self) -> Option<usize> {
        self.partner
    }

    /// The address assignment, in the [`InstanceCells`] encoding the placement
    /// enumeration produced it in.
    #[must_use]
    pub fn cells(&self) -> InstanceCells {
        match self.partner {
            Some(partner) => InstanceCells::pair(partner, self.primary),
            None => InstanceCells::single(self.primary),
        }
    }

    /// The address whose decode is perturbed: the primary for every class
    /// except *multiple addresses map*, where the alias (partner) address is
    /// the one redirected onto the primary cell.
    #[must_use]
    pub fn source(&self) -> usize {
        match self.fault {
            DecoderFault::MultipleAddressesMap => self.partner.expect("pair class binds a partner"),
            _ => self.primary,
        }
    }

    /// The cell the perturbed address reaches (`None` for *no cell accessed*,
    /// which selects nothing). For *multiple cells accessed* this is the extra
    /// cell selected alongside the source's own cell.
    #[must_use]
    pub fn destination(&self) -> Option<usize> {
        match self.fault {
            DecoderFault::NoCellAccessed { .. } => None,
            DecoderFault::NoAddressMaps | DecoderFault::MultipleCellsAccessed => self.partner,
            DecoderFault::MultipleAddressesMap => Some(self.primary),
        }
    }
}

impl fmt::Display for DecoderFaultInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.partner {
            Some(partner) => write!(f, "{} @ a={}, p={partner}", self.fault, self.primary),
            None => write!(f, "{} @ a={}", self.fault, self.primary),
        }
    }
}

fn build_component(
    primitive: FaultPrimitive,
    aggressor: Option<usize>,
    victim: usize,
    memory_cells: usize,
) -> Result<InjectedFault, SimulationError> {
    if primitive.is_coupling() {
        let aggressor = aggressor.ok_or_else(|| {
            SimulationError::MissingCells("coupling component needs an aggressor".to_string())
        })?;
        InjectedFault::coupling(primitive, aggressor, victim, memory_cells)
    } else {
        InjectedFault::single_cell(primitive, victim, memory_cells)
    }
}

fn check_address(address: usize, cells: usize) -> Result<(), SimulationError> {
    if address >= cells {
        Err(SimulationError::AddressOutOfRange { address, cells })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_fault_model::{FaultList, Ffm, LinkTopology};

    fn first_with_topology(topology: LinkTopology) -> LinkedFault {
        FaultList::list_1()
            .linked()
            .iter()
            .find(|lf| lf.topology() == topology)
            .cloned()
            .expect("list 1 contains every topology")
    }

    #[test]
    fn injected_fault_validation() {
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let cfds = Ffm::DisturbCoupling.fault_primitives()[0].clone();

        assert!(InjectedFault::single_cell(tf.clone(), 2, 4).is_ok());
        assert!(matches!(
            InjectedFault::single_cell(tf.clone(), 4, 4),
            Err(SimulationError::AddressOutOfRange { .. })
        ));
        assert!(matches!(
            InjectedFault::single_cell(cfds.clone(), 2, 4),
            Err(SimulationError::MissingCells(_))
        ));
        assert!(InjectedFault::coupling(cfds.clone(), 0, 3, 4).is_ok());
        assert!(matches!(
            InjectedFault::coupling(cfds.clone(), 3, 3, 4),
            Err(SimulationError::OverlappingCells { .. })
        ));
        assert!(matches!(
            InjectedFault::coupling(tf, 0, 3, 4),
            Err(SimulationError::MissingCells(_))
        ));
        let fault = InjectedFault::coupling(cfds, 0, 3, 4).unwrap();
        assert_eq!(fault.sensitizing_cell(), Some(0));
    }

    #[test]
    fn lf1_instance_uses_single_cell() {
        let fault = first_with_topology(LinkTopology::Lf1);
        let instance = LinkedFaultInstance::new(fault, InstanceCells::single(3), 8).unwrap();
        assert_eq!(instance.components().len(), 2);
        assert!(instance
            .components()
            .iter()
            .all(|component| component.victim() == 3 && component.aggressor().is_none()));
        assert_eq!(instance.cells().cells(), vec![3]);
    }

    #[test]
    fn lf2_instances_resolve_aggressors() {
        let av = first_with_topology(LinkTopology::Lf2CouplingThenSingle);
        let instance = LinkedFaultInstance::new(av, InstanceCells::pair(1, 5), 8).unwrap();
        assert_eq!(instance.components()[0].aggressor(), Some(1));
        assert_eq!(instance.components()[1].aggressor(), None);

        let va = first_with_topology(LinkTopology::Lf2SingleThenCoupling);
        let instance = LinkedFaultInstance::new(va, InstanceCells::pair(1, 5), 8).unwrap();
        assert_eq!(instance.components()[0].aggressor(), None);
        assert_eq!(instance.components()[1].aggressor(), Some(1));

        let aa = first_with_topology(LinkTopology::Lf2SharedAggressor);
        let instance = LinkedFaultInstance::new(aa, InstanceCells::pair(1, 5), 8).unwrap();
        assert_eq!(instance.components()[0].aggressor(), Some(1));
        assert_eq!(instance.components()[1].aggressor(), Some(1));
    }

    #[test]
    fn decoder_instance_validation_and_roles() {
        use sram_fault_model::{Bit, DecoderFault};

        let nca = DecoderFault::NoCellAccessed {
            open_read: Bit::One,
        };
        let instance = DecoderFaultInstance::new(nca, InstanceCells::single(3), 8).unwrap();
        assert_eq!(instance.source(), 3);
        assert_eq!(instance.destination(), None);
        assert_eq!(instance.partner(), None);
        assert_eq!(instance.cells(), InstanceCells::single(3));
        assert!(!instance.to_string().is_empty());
        assert!(matches!(
            DecoderFaultInstance::new(nca, InstanceCells::single(8), 8),
            Err(SimulationError::AddressOutOfRange { .. })
        ));

        let nam =
            DecoderFaultInstance::new(DecoderFault::NoAddressMaps, InstanceCells::pair(5, 3), 8)
                .unwrap();
        assert_eq!((nam.source(), nam.destination()), (3, Some(5)));
        assert_eq!(nam.cells(), InstanceCells::pair(5, 3));

        let mca = DecoderFaultInstance::new(
            DecoderFault::MultipleCellsAccessed,
            InstanceCells::pair(5, 3),
            8,
        )
        .unwrap();
        assert_eq!((mca.source(), mca.destination()), (3, Some(5)));

        // The alias address of the `multiple addresses map` class is the
        // perturbed one; the primary cell is its destination.
        let mam = DecoderFaultInstance::new(
            DecoderFault::MultipleAddressesMap,
            InstanceCells::pair(5, 3),
            8,
        )
        .unwrap();
        assert_eq!((mam.source(), mam.destination()), (5, Some(3)));

        assert!(matches!(
            DecoderFaultInstance::new(DecoderFault::NoAddressMaps, InstanceCells::single(3), 8),
            Err(SimulationError::MissingCells(_))
        ));
        assert!(matches!(
            DecoderFaultInstance::new(DecoderFault::NoAddressMaps, InstanceCells::pair(3, 3), 8),
            Err(SimulationError::OverlappingCells { address: 3 })
        ));
    }

    #[test]
    fn lf3_requires_two_distinct_aggressors() {
        let lf3 = first_with_topology(LinkTopology::Lf3);
        let instance =
            LinkedFaultInstance::new(lf3.clone(), InstanceCells::triple(0, 4, 6), 8).unwrap();
        assert_eq!(instance.components()[0].aggressor(), Some(0));
        assert_eq!(instance.components()[1].aggressor(), Some(4));
        assert_eq!(instance.cells().cells(), vec![0, 4, 6]);

        assert!(matches!(
            LinkedFaultInstance::new(lf3.clone(), InstanceCells::triple(0, 0, 6), 8),
            Err(SimulationError::OverlappingCells { .. })
        ));
        assert!(matches!(
            LinkedFaultInstance::new(lf3, InstanceCells::single(6), 8),
            Err(SimulationError::MissingCells(_))
        ));
    }
}
