//! The crate's synchronisation façade.
//!
//! Everything concurrency-flavoured in this crate — locks, condvars, atomics,
//! threads — is imported through this module instead of `std` directly. In
//! normal builds it re-exports `std::sync`/`std::thread` unchanged (zero
//! cost); under `--cfg interleave` it re-exports the instrumented versions
//! from the [`interleave`] crate, which lets the model tests in
//! [`models`](crate::models) explore thread schedules of the store and pool
//! protocols deterministically.
//!
//! `Arc` and `OnceLock` come from `std` in both configurations (refcounting
//! and process-global init need no schedule instrumentation; `interleave`
//! re-exports the `std` types for them).

#[cfg(not(interleave))]
pub use std::sync::{atomic, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

#[cfg(not(interleave))]
pub use std::thread;

#[cfg(interleave)]
pub use interleave::sync::{atomic, Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

#[cfg(interleave)]
pub use interleave::thread;
