//! The unified execution policy of the simulation stack.
//!
//! Before [`ExecPolicy`], every pipeline stage carried its own copy of the
//! execution knobs — `CoverageConfig { backend, threads }` for coverage,
//! `GeneratorConfig { backend, threads, batch }` for generation — and the CLI
//! and benches re-plumbed the triple independently. `ExecPolicy` owns those
//! knobs once; a [`Session`](crate::Session) is built from it and every
//! pipeline entry point inherits the same policy. The session built from a
//! policy also owns the run-time state the policy's knobs govern: the
//! resident worker pool (`threads`) and the memoised target-lane artifact
//! cache that repeated coverage/generation/minimisation queries share.

use crate::backend::BackendKind;
use crate::lane::LaneWidth;

/// The default wave-vs-per-candidate cost-model factor.
///
/// The packed candidate-wave evaluator pays roughly this many masked group
/// passes per padded operation slot per pending lane, versus one plain pass
/// per operation of every candidate on the per-candidate path (see
/// [`TargetBatch::score_pool`](crate::TargetBatch::score_pool)). The value is
/// calibrated from the committed `BENCH_simulation.json` trajectory: with a
/// factor of 3 the batched repair-pool workloads run 10–12× over per-candidate
/// scoring, and nudging the factor to 2 or 4 flips the switch on pool shapes
/// where the measured times show the other path is cheaper.
pub const DEFAULT_WAVE_COST_FACTOR: usize = 3;

/// Execution policy shared by every pipeline stage: which backend simulates,
/// how many worker threads fan the work out, how many candidates are packed
/// per scoring batch, and the cost-model threshold that picks between the
/// candidate-wave and per-candidate scoring strategies.
///
/// Every knob is *result-invariant*: verdicts, reports and generated tests
/// are byte-identical for every policy; only the wall-clock changes.
///
/// # Examples
///
/// ```
/// use sram_sim::{BackendKind, ExecPolicy};
///
/// let policy = ExecPolicy::default().with_threads(0).with_batch(32);
/// assert_eq!(policy.backend, BackendKind::Packed);
/// assert_eq!(policy.batch, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Which simulation backend evaluates coverage lanes and candidates.
    /// Defaults to the bit-parallel packed engine.
    pub backend: BackendKind,
    /// Worker threads the fault targets / scoring grid fan out over
    /// (`1` = serial, `0` = available parallelism).
    pub threads: usize,
    /// Maximum candidates packed per [`CandidateBatch`](crate::CandidateBatch)
    /// when scoring (`0` = full 64-lane words, `1` = per-candidate scoring).
    pub batch: usize,
    /// The wave-vs-per-candidate switch: the candidate wave is used when
    /// `pending lanes × padded slots × wave_cost_factor ≤ Σ candidate ops`.
    /// Defaults to [`DEFAULT_WAVE_COST_FACTOR`]; both strategies are exact,
    /// so any value is result-identical.
    pub wave_cost_factor: usize,
    /// How many coverage lanes the packed backend carries per word
    /// (`Auto` = narrowest width holding each target's lane count; explicit
    /// 64/128/256 pin the word). Ignored by the scalar backend. Like every
    /// other knob, result-invariant: reports are byte-identical at any width.
    pub lane_width: LaneWidth,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            backend: BackendKind::Packed,
            threads: 1,
            batch: 0,
            wave_cost_factor: DEFAULT_WAVE_COST_FACTOR,
            lane_width: LaneWidth::Auto,
        }
    }
}

impl ExecPolicy {
    /// A policy using every available core and full scoring words — the fast
    /// path for large workloads. Results are identical to the default policy.
    #[must_use]
    pub fn fast() -> ExecPolicy {
        ExecPolicy {
            threads: 0,
            ..ExecPolicy::default()
        }
    }

    /// Replaces the simulation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> ExecPolicy {
        self.backend = backend;
        self
    }

    /// Replaces the worker-thread count (`0` = available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> ExecPolicy {
        self.threads = threads;
        self
    }

    /// Replaces the candidate-batch width (`0` = full 64-candidate words,
    /// `1` = per-candidate scoring).
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> ExecPolicy {
        self.batch = batch;
        self
    }

    /// Replaces the wave-vs-per-candidate cost-model factor.
    #[must_use]
    pub fn with_wave_cost_factor(mut self, factor: usize) -> ExecPolicy {
        self.wave_cost_factor = factor;
        self
    }

    /// Replaces the packed lane width.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: LaneWidth) -> ExecPolicy {
        self.lane_width = lane_width;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_legacy_knobs() {
        let policy = ExecPolicy::default();
        assert_eq!(policy.backend, BackendKind::Packed);
        assert_eq!(policy.threads, 1);
        assert_eq!(policy.batch, 0);
        assert_eq!(policy.wave_cost_factor, DEFAULT_WAVE_COST_FACTOR);
        assert_eq!(policy.lane_width, LaneWidth::Auto);
        assert_eq!(ExecPolicy::fast().threads, 0);
        assert_eq!(ExecPolicy::fast().lane_width, LaneWidth::Auto);
    }

    #[test]
    fn builders_set_the_knobs() {
        let policy = ExecPolicy::default()
            .with_backend(BackendKind::Scalar)
            .with_threads(4)
            .with_batch(16)
            .with_wave_cost_factor(5)
            .with_lane_width(LaneWidth::W256);
        assert_eq!(policy.backend, BackendKind::Scalar);
        assert_eq!(policy.threads, 4);
        assert_eq!(policy.batch, 16);
        assert_eq!(policy.wave_cost_factor, 5);
        assert_eq!(policy.lane_width, LaneWidth::W256);
    }
}
