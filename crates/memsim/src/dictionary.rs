//! Fault dictionaries: pre-computed syndrome databases for march-test based
//! diagnosis.
//!
//! A fault dictionary maps every fault instance of a fault list (fault × cell
//! assignment) to the failure [`Syndrome`] it produces under a given march test.
//! Dictionaries make repeated diagnosis queries cheap (one set lookup instead of a
//! full simulation sweep) and expose the *diagnostic resolution* of a march test —
//! how many fault instances share the same syndrome and are therefore
//! indistinguishable by that test.

use std::collections::BTreeMap;
use std::fmt;

use march_test::MarchTest;
use sram_fault_model::FaultList;

use crate::{
    enumerate_decoder_placements, enumerate_placements, CoverageConfig, DecoderFaultInstance,
    FaultSimulator, InitialState, InjectedFault, InstanceCells, LinkTopologyExt,
    LinkedFaultInstance, PlacementStrategy, Syndrome, TargetKind,
};

/// One entry of a fault dictionary: a fault instance and the syndrome it produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryEntry {
    /// The fault (simple primitive or linked fault).
    pub target: TargetKind,
    /// The cell assignment of the instance.
    pub cells: InstanceCells,
    /// The syndrome observed when simulating the instance under the dictionary's
    /// march test; empty for undetected instances.
    pub syndrome: Syndrome,
}

impl fmt::Display for DictionaryEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} -> {}", self.target, self.cells, self.syndrome)
    }
}

/// The canonical syndrome key of the dictionary index: one
/// `(element, operation, cell, observed)` tuple per failing read.
type SyndromeKey = Vec<(usize, usize, usize, u8)>;

/// A pre-computed fault dictionary for one march test, one fault list and one data
/// background.
///
/// # Examples
///
/// ```
/// use march_test::catalog;
/// use sram_fault_model::{FaultListBuilder, Ffm};
/// use sram_sim::{CoverageConfig, FaultDictionary};
///
/// let list = FaultListBuilder::new("transition faults")
///     .family(Ffm::TransitionFault)
///     .build()?;
/// let dictionary = FaultDictionary::build(
///     &catalog::march_ss(),
///     &list,
///     &CoverageConfig { memory_cells: 6, ..CoverageConfig::default() },
/// );
/// assert_eq!(dictionary.len(), 2 * 6);          // 2 primitives × 6 cells
/// assert_eq!(dictionary.undetected().count(), 0);
/// # Ok::<(), sram_fault_model::FaultModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    test_name: String,
    entries: Vec<DictionaryEntry>,
    index: BTreeMap<SyndromeKey, Vec<usize>>,
}

impl FaultDictionary {
    /// Builds the dictionary by simulating every fault instance of `list` under
    /// `test`.
    ///
    /// Placements are enumerated exhaustively (diagnosis needs localisation); the
    /// background is the first one of `config` (default: all ones).
    #[must_use]
    pub fn build(test: &MarchTest, list: &FaultList, config: &CoverageConfig) -> FaultDictionary {
        let background = config
            .backgrounds
            .first()
            .cloned()
            .unwrap_or(InitialState::AllOne);
        let mut entries = Vec::new();

        for primitive in list.simple() {
            let topology = primitive.diagnosis_topology();
            for cells in
                enumerate_placements(topology, config.memory_cells, PlacementStrategy::Exhaustive)
                    .expect("dictionary memory hosts the placements")
            {
                let mut simulator = FaultSimulator::new(config.memory_cells, &background)
                    .expect("dictionary memory configuration is valid");
                let injected = if primitive.is_coupling() {
                    InjectedFault::coupling(
                        primitive.clone(),
                        cells.aggressor_first.expect("pair placement"),
                        cells.victim,
                        config.memory_cells,
                    )
                } else {
                    InjectedFault::single_cell(primitive.clone(), cells.victim, config.memory_cells)
                }
                .expect("enumerated placements are valid");
                simulator.inject(injected);
                entries.push(DictionaryEntry {
                    target: TargetKind::Simple(primitive.clone()),
                    cells,
                    syndrome: Syndrome::observe(test, &mut simulator),
                });
            }
        }

        for fault in list.linked() {
            for cells in enumerate_placements(
                fault.topology(),
                config.memory_cells,
                PlacementStrategy::Exhaustive,
            )
            .expect("dictionary memory hosts the placements")
            {
                let mut simulator = FaultSimulator::new(config.memory_cells, &background)
                    .expect("dictionary memory configuration is valid");
                let instance = LinkedFaultInstance::new(fault.clone(), cells, config.memory_cells)
                    .expect("enumerated placements are valid");
                simulator.inject_linked(&instance);
                entries.push(DictionaryEntry {
                    target: TargetKind::Linked(fault.clone()),
                    cells,
                    syndrome: Syndrome::observe(test, &mut simulator),
                });
            }
        }

        for fault in list.decoders() {
            for cells in enumerate_decoder_placements(
                *fault,
                config.memory_cells,
                PlacementStrategy::Exhaustive,
            )
            .expect("dictionary memory hosts the placements")
            {
                let mut simulator = FaultSimulator::new(config.memory_cells, &background)
                    .expect("dictionary memory configuration is valid");
                let instance = DecoderFaultInstance::new(*fault, cells, config.memory_cells)
                    .expect("enumerated placements are valid");
                simulator.inject_decoder(instance);
                entries.push(DictionaryEntry {
                    target: TargetKind::Decoder(*fault),
                    cells,
                    syndrome: Syndrome::observe(test, &mut simulator),
                });
            }
        }

        let mut index: BTreeMap<SyndromeKey, Vec<usize>> = BTreeMap::new();
        for (position, entry) in entries.iter().enumerate() {
            index
                .entry(Self::key(&entry.syndrome))
                .or_default()
                .push(position);
        }

        FaultDictionary {
            test_name: test.name().to_string(),
            entries,
            index,
        }
    }

    /// Rebuilds a dictionary from decoded entries — the snapshot loader's
    /// constructor. The index is re-derived with the same keying as
    /// [`FaultDictionary::build`], so a round-tripped dictionary answers
    /// every lookup identically to a freshly built one.
    pub(crate) fn from_parts(test_name: String, entries: Vec<DictionaryEntry>) -> FaultDictionary {
        let mut index: BTreeMap<SyndromeKey, Vec<usize>> = BTreeMap::new();
        for (position, entry) in entries.iter().enumerate() {
            index
                .entry(Self::key(&entry.syndrome))
                .or_default()
                .push(position);
        }
        FaultDictionary {
            test_name,
            entries,
            index,
        }
    }

    fn key(syndrome: &Syndrome) -> Vec<(usize, usize, usize, u8)> {
        syndrome
            .entries()
            .map(|entry| {
                (
                    entry.element,
                    entry.cell,
                    entry.operation,
                    entry.observed.as_u8(),
                )
            })
            .collect()
    }

    /// The march test the dictionary was built for.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// Every entry of the dictionary.
    #[must_use]
    pub fn entries(&self) -> &[DictionaryEntry] {
        &self.entries
    }

    /// Number of fault instances in the dictionary.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` for an empty dictionary (empty fault list).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up every fault instance whose syndrome equals `syndrome`.
    #[must_use]
    pub fn lookup(&self, syndrome: &Syndrome) -> Vec<&DictionaryEntry> {
        self.index
            .get(&Self::key(syndrome))
            .map(|positions| {
                positions
                    .iter()
                    .map(|&position| &self.entries[position])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The fault instances the march test does not detect at all (empty syndrome).
    pub fn undetected(&self) -> impl Iterator<Item = &DictionaryEntry> {
        self.entries
            .iter()
            .filter(|entry| entry.syndrome.is_empty())
    }

    /// Number of distinct non-empty syndromes.
    #[must_use]
    pub fn distinct_syndromes(&self) -> usize {
        self.index.keys().filter(|key| !key.is_empty()).count()
    }

    /// Diagnostic resolution: the fraction of *detected* fault instances whose
    /// syndrome is unique (i.e. the test pinpoints them exactly). `1.0` for an
    /// ideal diagnostic test, `0.0` when every syndrome is ambiguous.
    #[must_use]
    pub fn resolution(&self) -> f64 {
        let detected: Vec<&Vec<usize>> = self
            .index
            .iter()
            .filter(|(key, _)| !key.is_empty())
            .map(|(_, positions)| positions)
            .collect();
        let total: usize = detected.iter().map(|positions| positions.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let unique = detected
            .iter()
            .filter(|positions| positions.len() == 1)
            .count();
        unique as f64 / total as f64
    }
}

impl fmt::Display for FaultDictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault dictionary for {}: {} instances, {} distinct syndromes, resolution {:.2}",
            self.test_name,
            self.len(),
            self.distinct_syndromes(),
            self.resolution()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;
    use sram_fault_model::{FaultListBuilder, Ffm};

    fn small_config() -> CoverageConfig {
        CoverageConfig {
            memory_cells: 6,
            ..CoverageConfig::default()
        }
    }

    #[test]
    fn dictionary_over_single_cell_faults() {
        let list = FaultListBuilder::new("single-cell")
            .family(Ffm::TransitionFault)
            .family(Ffm::WriteDestructiveFault)
            .build()
            .unwrap();
        let dictionary = FaultDictionary::build(&catalog::march_ss(), &list, &small_config());
        assert_eq!(dictionary.len(), 4 * 6);
        assert_eq!(dictionary.undetected().count(), 0);
        assert!(dictionary.distinct_syndromes() > 0);
        assert!(dictionary.resolution() > 0.0);
        assert!(!dictionary.to_string().is_empty());
        assert!(!dictionary.is_empty());
    }

    #[test]
    fn lookup_recovers_the_injected_instance() {
        let list = FaultListBuilder::new("tf")
            .family(Ffm::TransitionFault)
            .build()
            .unwrap();
        let dictionary = FaultDictionary::build(&catalog::march_ss(), &list, &small_config());

        // Simulate an "unknown" device with TF↑ on cell 4 and look its syndrome up.
        let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
        let mut device = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
        device.inject(InjectedFault::single_cell(tf.clone(), 4, 6).unwrap());
        let syndrome = Syndrome::observe(&catalog::march_ss(), &mut device);

        let matches = dictionary.lookup(&syndrome);
        assert!(!matches.is_empty());
        assert!(matches.iter().all(|entry| entry.cells.victim == 4));
        assert!(matches.iter().any(|entry| match &entry.target {
            TargetKind::Simple(fp) => fp == &tf,
            _ => false,
        }));

        // A passing syndrome matches only undetected entries (of which there are
        // none for March SS over transition faults).
        assert!(dictionary.lookup(&Syndrome::new()).is_empty());
    }

    #[test]
    fn weak_tests_have_undetected_entries_and_lower_resolution() {
        let list = FaultListBuilder::new("wdf")
            .family(Ffm::WriteDestructiveFault)
            .build()
            .unwrap();
        let weak = FaultDictionary::build(&catalog::mats_plus(), &list, &small_config());
        let strong = FaultDictionary::build(&catalog::march_ss(), &list, &small_config());
        assert!(weak.undetected().count() > 0);
        assert_eq!(strong.undetected().count(), 0);
        assert!(weak.distinct_syndromes() <= strong.distinct_syndromes());
    }

    #[test]
    fn linked_fault_dictionary_counts_placements() {
        let list = FaultList::list_2();
        let dictionary = FaultDictionary::build(&catalog::march_abl1(), &list, &small_config());
        // 32 LF1 faults × 6 victim cells.
        assert_eq!(dictionary.len(), 32 * 6);
        assert_eq!(dictionary.undetected().count(), 0);
    }
}
