//! Crash-safe snapshot persistence for the [`ArtifactStore`]: the resident
//! service's warm cache, survived across process restarts.
//!
//! A snapshot file holds one store artifact — a target-lane enumeration or a
//! fault dictionary — in a dependency-free, versioned, checksummed binary
//! format, keyed by the same immutable content keys the in-memory store uses
//! ([`ArtifactKey`] / [`DictionaryKey`]). Because keys fingerprint the fault
//! list *contents* and the full simulation scope, a snapshot is immutable:
//! it is either byte-equivalent to what a fresh enumeration would produce, or
//! it is corrupt and must be discarded. There is no invalidation protocol.
//!
//! # On-disk format (version 1, little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "MCSX"
//! 4       4     CRC32-IEEE over every byte from offset 8 to the end
//! 8       4     format version (1)
//! 12      4     artifact kind (1 = target lanes, 2 = fault dictionary)
//! 16      8     total file length in bytes (detects truncation exactly)
//! 24      ..    key echo: the canonical key encoding the file was saved under
//! ..      ..    payload
//! ```
//!
//! The payload deliberately re-derives, rather than serialises, the fault
//! *targets*: both the lane enumeration and the dictionary build walk the
//! list in [`enumerate_targets`] order (simple, then linked, then decoder
//! faults), so the payload stores only the per-target data and the loader
//! zips it against a fresh `enumerate_targets(list)` — a snapshot can never
//! smuggle in a fault the list does not contain.
//!
//! # Failure model
//!
//! Every filesystem touch goes through the [`SnapshotIo`] trait. The
//! production impl ([`FsIo`]) wraps `std::fs`; the test impl ([`MemIo`])
//! injects torn writes, short reads, bit flips, `ENOSPC`, rename failures and
//! permission errors from deterministic scripts or seeded chaos schedules.
//! The [`SnapshotStore`] degrades gracefully on every one of them:
//!
//! * a corrupt, truncated, version-skewed or mis-keyed file is **quarantined**
//!   (moved aside, or removed when even that fails) and the caller rebuilds
//!   in memory — a typed [`SnapshotError`] is retained for `stats`;
//! * a load racing a concurrent writer (file momentarily absent, lock file
//!   present) retries with bounded backoff before treating it as a miss;
//! * an unwritable snapshot directory downgrades the store to memory-only at
//!   construction — a warning state, never an error;
//! * a failed write (disk full, rename error) is counted, the temp file is
//!   swept, and the in-memory result is served as if persistence were off.
//!
//! Writes are atomic: payload to `<name>.tmp`, fsync, rename over the final
//! name, guarded by a `<name>.lock` file created with `create_new` so only
//! one process writes a given key at a time.
//!
//! [`ArtifactStore`]: crate::ArtifactStore
//! [`enumerate_targets`]: crate::enumerate_targets

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;

use sram_fault_model::{Bit, FaultList};

use crate::diagnose::{Syndrome, SyndromeEntry};
use crate::session::TargetLanes;
use crate::store::{ArtifactKey, DictionaryKey, ListFingerprint};
use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{Arc, Mutex, PoisonError};
use crate::{
    enumerate_targets, CoverageLane, DictionaryEntry, FaultDictionary, InitialState, InstanceCells,
    PlacementStrategy,
};

/// Snapshot format version written and accepted by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// The four magic bytes opening every snapshot file.
const MAGIC: [u8; 4] = *b"MCSX";

/// Artifact kind tag of a target-lane snapshot.
const KIND_LANES: u32 = 1;
/// Artifact kind tag of a fault-dictionary snapshot.
const KIND_DICTIONARY: u32 = 2;

/// Fixed header size: magic + checksum + version + kind + total length.
const HEADER_LEN: usize = 24;

/// How many times a load that finds the file absent while a writer holds the
/// lock retries before giving up and rebuilding.
const LOAD_RACE_RETRIES: usize = 3;

/// Backoff between load-race retries, in milliseconds (doubled per attempt).
const LOAD_RACE_BACKOFF_MS: u64 = 2;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a snapshot could not be loaded or written. Every variant is a
/// *degradation*, not a failure: the store quarantines or skips the file and
/// the caller rebuilds in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// An I/O operation failed; `op` names the operation, `detail` the
    /// underlying error.
    Io {
        /// The failing operation (`read`, `write`, `rename`, …).
        op: &'static str,
        /// The underlying error rendered as text.
        detail: String,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The stored CRC32 does not match the file contents.
    ChecksumMismatch,
    /// The file was written by a different format version.
    VersionSkew {
        /// The version found in the file.
        found: u32,
    },
    /// The file holds a different artifact kind than the key asked for.
    WrongKind {
        /// The kind tag found in the file.
        found: u32,
    },
    /// The file is shorter (or longer) than its recorded total length.
    Truncated {
        /// The total length the header promises.
        expected: u64,
        /// The byte count actually present.
        found: u64,
    },
    /// The payload failed structural validation.
    Malformed {
        /// What the decoder tripped on.
        detail: &'static str,
    },
    /// The key echoed inside the file is not the key the load asked for — a
    /// hash collision or a renamed file.
    KeyMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io { op, detail } => write!(f, "snapshot {op} failed: {detail}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::VersionSkew { found } => {
                write!(
                    f,
                    "snapshot version {found} != supported {SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::WrongKind { found } => {
                write!(
                    f,
                    "snapshot holds artifact kind {found}, not the requested kind"
                )
            }
            SnapshotError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: header promises {expected} bytes, found {found}"
                )
            }
            SnapshotError::Malformed { detail } => {
                write!(f, "snapshot payload malformed: {detail}")
            }
            SnapshotError::KeyMismatch => write!(f, "snapshot key echo does not match the query"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Internal result alias for decoding.
type DecodeResult<T> = std::result::Result<T, SnapshotError>;

// ---------------------------------------------------------------------------
// SnapshotIo: the sanctioned filesystem doorway
// ---------------------------------------------------------------------------

/// The filesystem surface the snapshot subsystem is allowed to touch. Every
/// `std::fs` call in the production path lives behind this trait so the chaos
/// tests can inject any failure the real filesystem can produce — and so the
/// `snapshot-io` lint rule can forbid direct `std::fs` use everywhere else on
/// the snapshot path.
pub trait SnapshotIo: fmt::Debug + Send + Sync {
    /// Creates `path` and every missing parent directory.
    fn create_dir_all(&self, path: &str) -> io::Result<()>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;

    /// Writes `bytes` to `path` and makes them durable (fsync) before
    /// returning.
    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Creates an empty lock file at `path`, failing with
    /// [`io::ErrorKind::AlreadyExists`] when another writer holds it.
    fn create_lock(&self, path: &str) -> io::Result<()>;

    /// The file names (not paths) directly under `path`, sorted.
    fn read_dir(&self, path: &str) -> io::Result<Vec<String>>;

    /// Sleeps for `millis` milliseconds (load-race backoff).
    fn sleep(&self, millis: u64);
}

/// The production [`SnapshotIo`]: a thin veneer over `std::fs`. This is the
/// one place on the snapshot path allowed to touch the filesystem directly —
/// everything else goes through the trait, which is what the `snapshot-io`
/// lint rule enforces.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsIo;

impl SnapshotIo for FsIo {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        std::fs::create_dir_all(path)
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        std::fs::read(path)
    }

    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        let mut file = std::fs::File::create(path)?;
        file.write_all(bytes)?;
        // Durability point: the rename that follows must never publish a file
        // whose contents are still in the page cache only.
        file.sync_all()
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        std::fs::remove_file(path)
    }

    fn create_lock(&self, path: &str) -> io::Result<()> {
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map(|_| ())
    }

    fn read_dir(&self, path: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        // lint: allow(snapshot-io) — this *is* the sanctioned SnapshotIo impl.
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn sleep(&self, millis: u64) {
        std::thread::sleep(std::time::Duration::from_millis(millis));
    }
}

// ---------------------------------------------------------------------------
// MemIo: deterministic fault injection for the chaos suites
// ---------------------------------------------------------------------------

/// Which [`SnapshotIo`] operation a scripted fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoOp {
    /// [`SnapshotIo::create_dir_all`].
    CreateDir,
    /// [`SnapshotIo::read`].
    Read,
    /// [`SnapshotIo::write`].
    Write,
    /// [`SnapshotIo::rename`].
    Rename,
    /// [`SnapshotIo::remove`].
    Remove,
    /// [`SnapshotIo::create_lock`].
    Lock,
    /// [`SnapshotIo::read_dir`].
    ReadDir,
}

#[derive(Debug, Clone)]
enum MemFault {
    /// The next matching operation fails with this error kind.
    Error(io::ErrorKind),
    /// The next write persists only the first `n` bytes, then reports failure
    /// — a torn write.
    Torn(usize),
    /// The next read succeeds but returns data with one bit flipped at this
    /// byte offset (modulo the file length) — silent media corruption.
    Flip(usize),
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeSet<String>,
    plans: Vec<(IoOp, MemFault)>,
    chaos_rng: u64,
    chaos_percent: u8,
    sleeps: usize,
}

/// An in-memory [`SnapshotIo`] with deterministic fault injection: scripted
/// per-operation failures ([`MemIo::fail`], [`MemIo::torn_write`],
/// [`MemIo::flip_on_read`]) or a seeded chaos schedule ([`MemIo::chaos`])
/// that injects a failure on a fixed fraction of operations. The chaos tests
/// and the `interleave` writer/loader race model both run on it.
#[derive(Debug, Default)]
pub struct MemIo {
    state: Mutex<MemState>,
}

impl MemIo {
    /// A fault-free in-memory filesystem.
    #[must_use]
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// An in-memory filesystem that fails roughly `percent`% of operations,
    /// deterministically from `seed` (xorshift64). The same seed always
    /// produces the same failure schedule.
    #[must_use]
    pub fn chaos(seed: u64, percent: u8) -> MemIo {
        let io = MemIo::new();
        {
            let mut state = io.lock();
            // xorshift needs a non-zero state.
            state.chaos_rng = seed | 1;
            state.chaos_percent = percent.min(100);
        }
        io
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Scripts the next matching `op` to fail with `kind`.
    pub fn fail(&self, op: IoOp, kind: io::ErrorKind) {
        self.lock().plans.push((op, MemFault::Error(kind)));
    }

    /// Scripts the next write to persist only its first `keep` bytes and then
    /// report failure — a torn write, as a crash mid-write would leave.
    pub fn torn_write(&self, keep: usize) {
        self.lock().plans.push((IoOp::Write, MemFault::Torn(keep)));
    }

    /// Scripts the next read to return data with one bit flipped at byte
    /// `offset` (modulo the file length) — silent corruption.
    pub fn flip_on_read(&self, offset: usize) {
        self.lock().plans.push((IoOp::Read, MemFault::Flip(offset)));
    }

    /// The current contents of `path`, if present.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<Vec<u8>> {
        self.lock().files.get(path).cloned()
    }

    /// Replaces (or plants) the contents of `path` directly — the corruption
    /// fuzzer's way of installing a tampered snapshot.
    pub fn insert_file(&self, path: &str, bytes: Vec<u8>) {
        self.lock().files.insert(path.to_string(), bytes);
    }

    /// Every stored file path, sorted.
    #[must_use]
    pub fn paths(&self) -> Vec<String> {
        self.lock().files.keys().cloned().collect()
    }

    /// How many backoff sleeps callers have taken — observability for the
    /// load-race retry tests.
    #[must_use]
    pub fn sleeps(&self) -> usize {
        self.lock().sleeps
    }

    fn take_fault(state: &mut MemState, op: IoOp) -> Option<MemFault> {
        if let Some(position) = state.plans.iter().position(|(planned, _)| *planned == op) {
            return Some(state.plans.remove(position).1);
        }
        if state.chaos_percent > 0 {
            // xorshift64: deterministic, dependency-free.
            let mut x = state.chaos_rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            state.chaos_rng = x;
            if x % 100 < u64::from(state.chaos_percent) {
                const KINDS: [io::ErrorKind; 4] = [
                    io::ErrorKind::StorageFull,
                    io::ErrorKind::PermissionDenied,
                    io::ErrorKind::Interrupted,
                    io::ErrorKind::Other,
                ];
                let kind = KINDS[(x >> 8) as usize % KINDS.len()];
                return Some(MemFault::Error(kind));
            }
        }
        None
    }

    fn fault_to_error(fault: &MemFault) -> io::Error {
        match fault {
            MemFault::Error(kind) => io::Error::new(*kind, "injected fault"),
            MemFault::Torn(_) => io::Error::new(io::ErrorKind::StorageFull, "torn write"),
            MemFault::Flip(_) => io::Error::other("flip faults do not error"),
        }
    }
}

impl SnapshotIo for MemIo {
    fn create_dir_all(&self, path: &str) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(fault) = MemIo::take_fault(&mut state, IoOp::CreateDir) {
            return Err(MemIo::fault_to_error(&fault));
        }
        state.dirs.insert(path.to_string());
        Ok(())
    }

    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let mut state = self.lock();
        let fault = MemIo::take_fault(&mut state, IoOp::Read);
        if let Some(MemFault::Error(kind)) = fault {
            return Err(io::Error::new(kind, "injected fault"));
        }
        let mut bytes = state
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        if let Some(MemFault::Flip(offset)) = fault {
            if !bytes.is_empty() {
                let index = offset % bytes.len();
                bytes[index] ^= 1;
            }
        }
        Ok(bytes)
    }

    fn write(&self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        match MemIo::take_fault(&mut state, IoOp::Write) {
            Some(MemFault::Torn(keep)) => {
                let keep = keep.min(bytes.len());
                state.files.insert(path.to_string(), bytes[..keep].to_vec());
                Err(io::Error::new(io::ErrorKind::StorageFull, "torn write"))
            }
            Some(fault) => Err(MemIo::fault_to_error(&fault)),
            None => {
                state.files.insert(path.to_string(), bytes.to_vec());
                Ok(())
            }
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(fault) = MemIo::take_fault(&mut state, IoOp::Rename) {
            return Err(MemIo::fault_to_error(&fault));
        }
        let bytes = state
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))?;
        state.files.insert(to.to_string(), bytes);
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(fault) = MemIo::take_fault(&mut state, IoOp::Remove) {
            return Err(MemIo::fault_to_error(&fault));
        }
        state
            .files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
    }

    fn create_lock(&self, path: &str) -> io::Result<()> {
        let mut state = self.lock();
        if let Some(fault) = MemIo::take_fault(&mut state, IoOp::Lock) {
            return Err(MemIo::fault_to_error(&fault));
        }
        if state.files.contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "lock held"));
        }
        state.files.insert(path.to_string(), Vec::new());
        Ok(())
    }

    fn read_dir(&self, path: &str) -> io::Result<Vec<String>> {
        let mut state = self.lock();
        if let Some(fault) = MemIo::take_fault(&mut state, IoOp::ReadDir) {
            return Err(MemIo::fault_to_error(&fault));
        }
        let prefix = format!("{path}/");
        Ok(state
            .files
            .keys()
            .filter_map(|full| full.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(str::to_string)
            .collect())
    }

    fn sleep(&self, _millis: u64) {
        self.lock().sleeps += 1;
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3 polynomial, reflected), bitwise — dependency-free and
/// fast enough for artifact-sized files.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a over the canonical key encoding: the file-name hash. Unlike
/// `DefaultHasher`, FNV is stable across processes and Rust versions — the
/// whole point of a shared snapshot directory.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, value: &str) {
    push_u64(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

fn push_state(buf: &mut Vec<u8>, state: &InitialState) {
    match state {
        InitialState::AllZero => buf.push(0),
        InitialState::AllOne => buf.push(1),
        InitialState::Checkerboard => buf.push(2),
        InitialState::Custom(bits) => {
            buf.push(3);
            push_u64(buf, bits.len() as u64);
            buf.extend(bits.iter().map(|bit| bit.as_u8()));
        }
    }
}

fn push_cells(buf: &mut Vec<u8>, cells: &InstanceCells) {
    push_u64(buf, cells.victim as u64);
    let flags = u8::from(cells.aggressor_first.is_some())
        | (u8::from(cells.aggressor_second.is_some()) << 1);
    buf.push(flags);
    if let Some(aggressor) = cells.aggressor_first {
        push_u64(buf, aggressor as u64);
    }
    if let Some(aggressor) = cells.aggressor_second {
        push_u64(buf, aggressor as u64);
    }
}

/// Bounds-checked little-endian reader over a snapshot payload. Every method
/// returns a typed error instead of panicking — the totality the corruption
/// fuzzer proves.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SnapshotError::Malformed {
                detail: "payload ends mid-field",
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    fn usize(&mut self) -> DecodeResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed {
            detail: "value exceeds the address space",
        })
    }

    /// A collection count, sanity-bounded by the bytes actually remaining so
    /// a corrupt length can never drive a huge allocation.
    fn count(&mut self, min_item_bytes: usize) -> DecodeResult<usize> {
        let count = self.usize()?;
        if count > self.remaining() / min_item_bytes.max(1) {
            return Err(SnapshotError::Malformed {
                detail: "collection count exceeds the payload",
            });
        }
        Ok(count)
    }

    fn string(&mut self) -> DecodeResult<String> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            detail: "string field is not UTF-8",
        })
    }

    fn bit(&mut self) -> DecodeResult<Bit> {
        match self.u8()? {
            0 => Ok(Bit::Zero),
            1 => Ok(Bit::One),
            _ => Err(SnapshotError::Malformed {
                detail: "bit field is neither 0 nor 1",
            }),
        }
    }

    fn state(&mut self) -> DecodeResult<InitialState> {
        match self.u8()? {
            0 => Ok(InitialState::AllZero),
            1 => Ok(InitialState::AllOne),
            2 => Ok(InitialState::Checkerboard),
            3 => {
                let len = self.count(1)?;
                let mut bits = Vec::with_capacity(len);
                for _ in 0..len {
                    bits.push(self.bit()?);
                }
                Ok(InitialState::Custom(bits))
            }
            _ => Err(SnapshotError::Malformed {
                detail: "unknown background tag",
            }),
        }
    }

    fn cells(&mut self) -> DecodeResult<InstanceCells> {
        let victim = self.usize()?;
        let flags = self.u8()?;
        if flags > 0b11 {
            return Err(SnapshotError::Malformed {
                detail: "unknown cell-assignment flags",
            });
        }
        let aggressor_first = if flags & 1 != 0 {
            Some(self.usize()?)
        } else {
            None
        };
        let aggressor_second = if flags & 2 != 0 {
            Some(self.usize()?)
        } else {
            None
        };
        Ok(InstanceCells {
            aggressor_first,
            aggressor_second,
            victim,
        })
    }

    fn done(&self) -> DecodeResult<()> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                detail: "trailing bytes after the payload",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Canonical key encodings (file-name hash + in-file key echo)
// ---------------------------------------------------------------------------

fn push_fingerprint(buf: &mut Vec<u8>, fingerprint: &ListFingerprint) {
    push_str(buf, &fingerprint.list_name);
    push_u64(buf, fingerprint.list_contents.len() as u64);
    for notation in &fingerprint.list_contents {
        push_str(buf, notation);
    }
}

fn encode_artifact_key(key: &ArtifactKey) -> Vec<u8> {
    let mut buf = Vec::new();
    push_fingerprint(&mut buf, &key.fingerprint);
    push_u64(&mut buf, key.memory_cells as u64);
    buf.push(match key.strategy {
        PlacementStrategy::Representative => 0,
        PlacementStrategy::Exhaustive => 1,
    });
    push_u64(&mut buf, key.backgrounds.len() as u64);
    for background in &key.backgrounds {
        push_state(&mut buf, background);
    }
    buf
}

fn encode_dictionary_key(key: &DictionaryKey) -> Vec<u8> {
    let mut buf = Vec::new();
    push_str(&mut buf, &key.test_name);
    push_str(&mut buf, &key.test_notation);
    push_fingerprint(&mut buf, &key.fingerprint);
    push_u64(&mut buf, key.memory_cells as u64);
    push_state(&mut buf, &key.background);
    buf
}

fn file_name(prefix: &str, key_bytes: &[u8]) -> String {
    format!("{prefix}-{:016x}.snap", fnv1a(key_bytes))
}

// ---------------------------------------------------------------------------
// Container encode / decode
// ---------------------------------------------------------------------------

fn encode_container(kind: u32, key_bytes: &[u8], payload: &[u8]) -> Vec<u8> {
    let total = (HEADER_LEN + 8 + key_bytes.len() + payload.len()) as u64;
    let mut buf = Vec::with_capacity(total as usize);
    buf.extend_from_slice(&MAGIC);
    push_u32(&mut buf, 0); // checksum placeholder
    push_u32(&mut buf, SNAPSHOT_VERSION);
    push_u32(&mut buf, kind);
    push_u64(&mut buf, total);
    push_u64(&mut buf, key_bytes.len() as u64);
    buf.extend_from_slice(key_bytes);
    buf.extend_from_slice(payload);
    let crc = crc32(&buf[8..]);
    buf[4..8].copy_from_slice(&crc.to_le_bytes());
    buf
}

/// Validates the container and returns the payload slice. `expected_key` of
/// `None` skips the key-echo comparison (the inspect path, which has no
/// query key) but still walks the echo.
fn decode_container<'a>(
    bytes: &'a [u8],
    expected_kind: u32,
    expected_key: Option<&[u8]>,
) -> DecodeResult<&'a [u8]> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            expected: (HEADER_LEN + 8) as u64,
            found: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    // Validate the header-declared length against the bytes actually on disk
    // *before* the O(n) checksum pass: a corrupt or hostile header promising
    // a multi-GB container is rejected here for the cost of one comparison,
    // and nothing downstream ever sizes a buffer from the declared length.
    let declared_total = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    if declared_total != bytes.len() as u64 {
        return Err(SnapshotError::Truncated {
            expected: declared_total,
            found: bytes.len() as u64,
        });
    }
    let stored_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if crc32(&bytes[8..]) != stored_crc {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut cursor = Cursor::new(&bytes[8..]);
    let version = cursor.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionSkew { found: version });
    }
    let kind = cursor.u32()?;
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind { found: kind });
    }
    let total = cursor.u64()?;
    debug_assert_eq!(total, declared_total);
    let key_len = cursor.count(1)?;
    let echoed = cursor.take(key_len)?;
    if let Some(expected) = expected_key {
        if echoed != expected {
            return Err(SnapshotError::KeyMismatch);
        }
    }
    Ok(&bytes[8 + cursor.pos..])
}

/// Reads only the header of a snapshot file — the inspect path, which knows
/// no query key. Returns the kind tag on success.
fn probe_container(bytes: &[u8]) -> DecodeResult<u32> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SnapshotError::Truncated {
            expected: (HEADER_LEN + 8) as u64,
            found: bytes.len() as u64,
        });
    }
    let kind = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    decode_container(bytes, kind, None)?;
    Ok(kind)
}

fn encode_lanes(lanes: &TargetLanes) -> Vec<u8> {
    let mut buf = Vec::new();
    push_u64(&mut buf, lanes.len() as u64);
    for (_, target_lanes) in lanes {
        push_u64(&mut buf, target_lanes.len() as u64);
        for lane in target_lanes {
            push_cells(&mut buf, &lane.cells);
            push_state(&mut buf, &lane.background);
        }
    }
    buf
}

/// Decodes a lane payload against a fresh `enumerate_targets(list)`: the
/// target identities come from the live fault list, never from the file.
fn decode_lanes(payload: &[u8], list: &FaultList) -> DecodeResult<TargetLanes> {
    let targets = enumerate_targets(list);
    let mut cursor = Cursor::new(payload);
    let target_count = cursor.count(8)?;
    if target_count != targets.len() {
        return Err(SnapshotError::Malformed {
            detail: "target count does not match the fault list",
        });
    }
    let mut entries = Vec::with_capacity(target_count);
    for target in targets {
        let lane_count = cursor.count(10)?;
        let mut lanes = Vec::with_capacity(lane_count);
        for _ in 0..lane_count {
            let cells = cursor.cells()?;
            let background = cursor.state()?;
            lanes.push(CoverageLane { cells, background });
        }
        entries.push((target, lanes));
    }
    cursor.done()?;
    Ok(entries)
}

fn encode_dictionary(dictionary: &FaultDictionary, list: &FaultList) -> Vec<u8> {
    // The dictionary's entries are contiguous per target, in
    // enumerate_targets order (the build loops walk simple, linked, decoder
    // faults in list order) — so a per-target run length is enough to
    // reattach targets at load time.
    let targets = enumerate_targets(list);
    let mut buf = Vec::new();
    push_str(&mut buf, dictionary.test_name());
    push_u64(&mut buf, targets.len() as u64);
    let mut entries = dictionary.entries().iter().peekable();
    for target in &targets {
        let mut run: Vec<&DictionaryEntry> = Vec::new();
        while let Some(entry) = entries.peek() {
            if entry.target != *target {
                break;
            }
            if let Some(entry) = entries.next() {
                run.push(entry);
            }
        }
        push_u64(&mut buf, run.len() as u64);
        for entry in run {
            push_cells(&mut buf, &entry.cells);
            push_u64(&mut buf, entry.syndrome.len() as u64);
            for syndrome_entry in entry.syndrome.entries() {
                push_u64(&mut buf, syndrome_entry.element as u64);
                push_u64(&mut buf, syndrome_entry.cell as u64);
                push_u64(&mut buf, syndrome_entry.operation as u64);
                buf.push(syndrome_entry.observed.as_u8());
            }
        }
    }
    buf
}

fn decode_dictionary(
    payload: &[u8],
    key: &DictionaryKey,
    list: &FaultList,
) -> DecodeResult<FaultDictionary> {
    let targets = enumerate_targets(list);
    let mut cursor = Cursor::new(payload);
    let test_name = cursor.string()?;
    if test_name != key.test_name {
        return Err(SnapshotError::Malformed {
            detail: "dictionary test name does not match the key",
        });
    }
    let target_count = cursor.count(8)?;
    if target_count != targets.len() {
        return Err(SnapshotError::Malformed {
            detail: "target count does not match the fault list",
        });
    }
    let mut entries = Vec::new();
    for target in targets {
        let run = cursor.count(10)?;
        for _ in 0..run {
            let cells = cursor.cells()?;
            let syndrome_len = cursor.count(25)?;
            let mut syndrome_entries = BTreeSet::new();
            for _ in 0..syndrome_len {
                let element = cursor.usize()?;
                let cell = cursor.usize()?;
                let operation = cursor.usize()?;
                let observed = cursor.bit()?;
                syndrome_entries.insert(SyndromeEntry {
                    element,
                    cell,
                    operation,
                    observed,
                });
            }
            entries.push(DictionaryEntry {
                target: target.clone(),
                cells,
                syndrome: Syndrome::from_entries(syndrome_entries),
            });
        }
    }
    cursor.done()?;
    Ok(FaultDictionary::from_parts(test_name, entries))
}

// ---------------------------------------------------------------------------
// SnapshotStats
// ---------------------------------------------------------------------------

/// Observability snapshot of a [`SnapshotStore`]: the counters the `serve`
/// stats op surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotStats {
    /// The snapshot directory the store was opened on.
    pub dir: String,
    /// `true` when the store fell back to memory-only (unwritable directory).
    pub degraded: bool,
    /// Loads answered from a valid snapshot file.
    pub hits: usize,
    /// Loads that found no snapshot (a plain cold miss).
    pub misses: usize,
    /// Snapshots written successfully.
    pub writes: usize,
    /// Writes abandoned on an I/O failure (disk full, rename error, …).
    pub write_failures: usize,
    /// Corrupt / version-skewed / mis-keyed files quarantined.
    pub quarantined: usize,
    /// The most recent degradation, rendered as text.
    pub last_error: Option<String>,
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

/// The crash-safe snapshot layer under an
/// [`ArtifactStore`](crate::ArtifactStore): content-keyed snapshot files in
/// one directory, written atomically, loaded with quarantine-on-corruption.
/// Every failure degrades to an in-memory rebuild — attaching a snapshot
/// store can never change a result, only skip recomputation.
#[derive(Debug)]
pub struct SnapshotStore {
    io: Arc<dyn SnapshotIo>,
    dir: String,
    degraded: AtomicBool,
    hits: AtomicUsize,
    misses: AtomicUsize,
    writes: AtomicUsize,
    write_failures: AtomicUsize,
    quarantined: AtomicUsize,
    last_error: Mutex<Option<SnapshotError>>,
}

impl SnapshotStore {
    /// Opens (creating if needed) the snapshot directory `dir` on the real
    /// filesystem. Never fails: an unwritable directory yields a store in
    /// degraded, memory-only mode — check [`SnapshotStore::is_degraded`].
    #[must_use]
    pub fn open(dir: &str) -> Arc<SnapshotStore> {
        SnapshotStore::with_io(Arc::new(FsIo), dir)
    }

    /// Opens a store over an explicit [`SnapshotIo`] — the chaos tests' entry
    /// point.
    #[must_use]
    pub fn with_io(io: Arc<dyn SnapshotIo>, dir: &str) -> Arc<SnapshotStore> {
        let store = SnapshotStore {
            io,
            dir: dir.to_string(),
            degraded: AtomicBool::new(false),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            write_failures: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            last_error: Mutex::new(None),
        };
        if let Err(error) = store.io.create_dir_all(dir) {
            store.degraded.store(true, Ordering::Relaxed);
            store.record(SnapshotError::Io {
                op: "create-dir",
                detail: error.to_string(),
            });
        }
        Arc::new(store)
    }

    /// The directory the store persists into.
    #[must_use]
    pub fn dir(&self) -> &str {
        &self.dir
    }

    /// `true` when the store fell back to memory-only mode (the snapshot
    /// directory could not be created or written at open time).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The store's counters and most recent degradation.
    #[must_use]
    pub fn stats(&self) -> SnapshotStats {
        SnapshotStats {
            dir: self.dir.clone(),
            degraded: self.is_degraded(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_failures: self.write_failures.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            last_error: self
                .last_error
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .as_ref()
                .map(ToString::to_string),
        }
    }

    fn record(&self, error: SnapshotError) {
        *self
            .last_error
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(error);
    }

    fn path(&self, name: &str) -> String {
        format!("{}/{}", self.dir, name)
    }

    /// Loads the snapshot of `key`, or `None` when the store must fall back
    /// to an in-memory build (miss, corruption, I/O failure — all counted).
    pub(crate) fn load_lanes(&self, key: &ArtifactKey, list: &FaultList) -> Option<TargetLanes> {
        let key_bytes = encode_artifact_key(key);
        let name = file_name("art", &key_bytes);
        let bytes = self.read_current(&name)?;
        match decode_container(&bytes, KIND_LANES, Some(&key_bytes))
            .and_then(|payload| decode_lanes(payload, list))
        {
            Ok(lanes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(lanes)
            }
            Err(error) => {
                self.quarantine(&name, error);
                None
            }
        }
    }

    /// Persists the lane enumeration of `key`. Failures degrade silently
    /// into the counters — the in-memory result is served regardless.
    pub(crate) fn store_lanes(&self, key: &ArtifactKey, lanes: &TargetLanes) {
        let key_bytes = encode_artifact_key(key);
        let name = file_name("art", &key_bytes);
        let payload = encode_lanes(lanes);
        self.write_atomic(&name, KIND_LANES, &key_bytes, &payload);
    }

    /// Loads the dictionary snapshot of `key`, or `None` on any degradation.
    pub(crate) fn load_dictionary(
        &self,
        key: &DictionaryKey,
        list: &FaultList,
    ) -> Option<FaultDictionary> {
        let key_bytes = encode_dictionary_key(key);
        let name = file_name("dict", &key_bytes);
        let bytes = self.read_current(&name)?;
        match decode_container(&bytes, KIND_DICTIONARY, Some(&key_bytes))
            .and_then(|payload| decode_dictionary(payload, key, list))
        {
            Ok(dictionary) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(dictionary)
            }
            Err(error) => {
                self.quarantine(&name, error);
                None
            }
        }
    }

    /// Persists the dictionary of `key`.
    pub(crate) fn store_dictionary(
        &self,
        key: &DictionaryKey,
        dictionary: &FaultDictionary,
        list: &FaultList,
    ) {
        let key_bytes = encode_dictionary_key(key);
        let name = file_name("dict", &key_bytes);
        let payload = encode_dictionary(dictionary, list);
        self.write_atomic(&name, KIND_DICTIONARY, &key_bytes, &payload);
    }

    /// Reads the current snapshot bytes of `name`, retrying with bounded
    /// backoff when the file is absent while a writer holds the lock (the
    /// cross-process load/store race). `None` is a counted miss.
    fn read_current(&self, name: &str) -> Option<Vec<u8>> {
        if self.is_degraded() {
            return None;
        }
        let path = self.path(name);
        let lock_path = format!("{path}.lock");
        let mut backoff = LOAD_RACE_BACKOFF_MS;
        for attempt in 0.. {
            match self.io.read(&path) {
                Ok(bytes) => return Some(bytes),
                Err(error) if error.kind() == io::ErrorKind::NotFound => {
                    // A writer that holds the lock is mid-rename: give it a
                    // bounded chance to publish before rebuilding.
                    let writer_active = self.io.read(&lock_path).is_ok();
                    if writer_active && attempt < LOAD_RACE_RETRIES {
                        self.io.sleep(backoff);
                        backoff *= 2;
                        continue;
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                Err(error) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    self.record(SnapshotError::Io {
                        op: "read",
                        detail: error.to_string(),
                    });
                    return None;
                }
            }
        }
        None
    }

    /// Atomic, single-writer publish of one snapshot: lock, write temp,
    /// fsync, rename, unlock. Every failure is swept and counted.
    fn write_atomic(&self, name: &str, kind: u32, key_bytes: &[u8], payload: &[u8]) {
        if self.is_degraded() {
            return;
        }
        let path = self.path(name);
        let lock_path = format!("{path}.lock");
        let tmp_path = format!("{path}.tmp");
        match self.io.create_lock(&lock_path) {
            Ok(()) => {}
            Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                // Another writer is publishing the same immutable content;
                // whoever wins, the bytes are the same. Not a failure.
                return;
            }
            Err(error) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                self.record(SnapshotError::Io {
                    op: "lock",
                    detail: error.to_string(),
                });
                return;
            }
        }
        let bytes = encode_container(kind, key_bytes, payload);
        let published = self
            .io
            .write(&tmp_path, &bytes)
            .and_then(|()| self.io.rename(&tmp_path, &path));
        if let Err(error) = published {
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            self.record(SnapshotError::Io {
                op: "write",
                detail: error.to_string(),
            });
            // Sweep the torn temp file; failure here changes nothing.
            let _ = self.io.remove(&tmp_path);
        } else {
            self.writes.fetch_add(1, Ordering::Relaxed);
        }
        let _ = self.io.remove(&lock_path);
    }

    /// Moves a corrupt snapshot out of the way so it is never re-read, with
    /// removal as the fallback and in-memory-only as the fallback's fallback.
    fn quarantine(&self, name: &str, error: SnapshotError) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.record(error);
        let path = self.path(name);
        let quarantine_dir = format!("{}/quarantine", self.dir);
        let quarantined = self
            .io
            .create_dir_all(&quarantine_dir)
            .and_then(|()| self.io.rename(&path, &format!("{quarantine_dir}/{name}")));
        if quarantined.is_err() {
            let _ = self.io.remove(&path);
        }
    }

    /// Header-validates every snapshot file in the directory — the CLI
    /// `snapshot` subcommand's inspect view. Lock/temp leftovers and foreign
    /// files are reported as such, not errors.
    #[must_use]
    pub fn inspect(&self) -> Vec<SnapshotFileInfo> {
        let names = match self.io.read_dir(&self.dir) {
            Ok(names) => names,
            Err(_) => return Vec::new(),
        };
        names
            .into_iter()
            .map(|name| {
                let path = self.path(&name);
                let (bytes, status, kind) = match self.io.read(&path) {
                    Ok(contents) if name.ends_with(".snap") => match probe_container(&contents) {
                        Ok(KIND_LANES) => (contents.len(), "ok".to_string(), "lanes"),
                        Ok(KIND_DICTIONARY) => (contents.len(), "ok".to_string(), "dictionary"),
                        Ok(_) => (contents.len(), "ok".to_string(), "unknown"),
                        Err(error) => (contents.len(), error.to_string(), "corrupt"),
                    },
                    Ok(contents) => (contents.len(), "not a snapshot".to_string(), "other"),
                    Err(error) => (0, error.to_string(), "unreadable"),
                };
                SnapshotFileInfo {
                    name,
                    bytes,
                    kind: kind.to_string(),
                    status,
                }
            })
            .collect()
    }
}

/// One row of [`SnapshotStore::inspect`]: a file in the snapshot directory
/// and what header validation made of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFileInfo {
    /// The file name within the snapshot directory.
    pub name: String,
    /// File size in bytes.
    pub bytes: usize,
    /// `lanes`, `dictionary`, `corrupt`, `other` or `unreadable`.
    pub kind: String,
    /// `ok`, or the validation error rendered as text.
    pub status: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecPolicy, SharedEngine};
    use sram_fault_model::FaultListBuilder;
    use sram_fault_model::Ffm;

    fn small_list() -> FaultList {
        FaultListBuilder::new("snapshot tests")
            .family(Ffm::TransitionFault)
            .family(Ffm::WriteDestructiveFault)
            .build()
            .expect("static families are valid")
    }

    fn artifact_key(list: &FaultList) -> ArtifactKey {
        ArtifactKey::new(
            list,
            6,
            PlacementStrategy::Representative,
            &[InitialState::AllOne, InitialState::AllZero],
        )
    }

    fn build_lanes(list: &FaultList) -> TargetLanes {
        let session = crate::Session::new(ExecPolicy::default()).with_memory_cells(6);
        session
            .target_lanes(list)
            .expect("6 cells host the list")
            .as_ref()
            .clone()
    }

    #[test]
    fn lanes_round_trip_byte_identically() {
        let list = small_list();
        let key = artifact_key(&list);
        let lanes = build_lanes(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        store.store_lanes(&key, &lanes);
        assert_eq!(store.stats().writes, 1);
        let loaded = store.load_lanes(&key, &list).expect("snapshot loads");
        assert_eq!(loaded, lanes);
        assert_eq!(store.stats().hits, 1);
        // The lock file must not linger after a successful publish.
        assert!(io.paths().iter().all(|path| !path.ends_with(".lock")));
        assert!(io.paths().iter().all(|path| !path.ends_with(".tmp")));
    }

    #[test]
    fn dictionary_round_trip_preserves_lookup_structure() {
        let list = small_list();
        let engine = SharedEngine::new(ExecPolicy::default());
        let session = engine.session().with_memory_cells(6);
        let test = march_test::catalog::march_ss();
        let fresh = session.dictionary(&test, &list);
        let key = DictionaryKey::new(&test, &list, 6, InitialState::AllOne);
        let store = SnapshotStore::with_io(Arc::new(MemIo::new()), "snap");
        store.store_dictionary(&key, &fresh, &list);
        let loaded = store.load_dictionary(&key, &list).expect("snapshot loads");
        assert_eq!(loaded.entries(), fresh.entries());
        assert_eq!(loaded.test_name(), fresh.test_name());
        assert_eq!(loaded.distinct_syndromes(), fresh.distinct_syndromes());
        // Lookup goes through the rebuilt index: every fresh syndrome must
        // resolve to the same entry set.
        for entry in fresh.entries() {
            assert_eq!(
                loaded.lookup(&entry.syndrome),
                fresh.lookup(&entry.syndrome)
            );
        }
    }

    #[test]
    fn missing_snapshot_is_a_counted_miss() {
        let list = small_list();
        let store = SnapshotStore::with_io(Arc::new(MemIo::new()), "snap");
        assert!(store.load_lanes(&artifact_key(&list), &list).is_none());
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.quarantined, 0);
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_never_reread() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        store.store_lanes(&key, &build_lanes(&list));
        // Flip one payload bit behind the store's back.
        let path = io
            .paths()
            .into_iter()
            .find(|path| path.ends_with(".snap"))
            .expect("snapshot written");
        let mut bytes = io.file(&path).expect("file exists");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        io.insert_file(&path, bytes);

        assert!(store.load_lanes(&key, &list).is_none());
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1);
        assert!(stats.last_error.is_some());
        // The corrupt file moved into quarantine/, so the retry is a miss.
        assert!(io.file(&path).is_none());
        assert!(io.paths().iter().any(|path| path.contains("/quarantine/")));
        assert!(store.load_lanes(&key, &list).is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn version_skew_is_typed_and_quarantined() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        store.store_lanes(&key, &build_lanes(&list));
        let path = io
            .paths()
            .into_iter()
            .find(|path| path.ends_with(".snap"))
            .expect("snapshot written");
        let mut bytes = io.file(&path).expect("file exists");
        // Bump the version field and re-seal the checksum so only the skew
        // trips.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bytes[8..]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        io.insert_file(&path, bytes);

        assert!(store.load_lanes(&key, &list).is_none());
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(
            stats.last_error.as_deref(),
            Some("snapshot version 99 != supported 1")
        );
    }

    #[test]
    fn torn_write_never_publishes_and_cleans_up() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        io.torn_write(10);
        store.store_lanes(&key, &build_lanes(&list));
        let stats = store.stats();
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.write_failures, 1);
        // Neither the torn temp nor the lock survives, and the final name was
        // never created — the next load is a clean miss, not corruption.
        assert!(io.paths().is_empty(), "leftovers: {:?}", io.paths());
        assert!(store.load_lanes(&key, &list).is_none());
        assert_eq!(store.stats().quarantined, 0);
    }

    #[test]
    fn disk_full_and_rename_failure_degrade_to_counted_skips() {
        let list = small_list();
        let key = artifact_key(&list);
        for (op, kind) in [
            (IoOp::Write, io::ErrorKind::StorageFull),
            (IoOp::Rename, io::ErrorKind::PermissionDenied),
            (IoOp::Lock, io::ErrorKind::PermissionDenied),
        ] {
            let io = Arc::new(MemIo::new());
            let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
            io.fail(op, kind);
            store.store_lanes(&key, &build_lanes(&list));
            let stats = store.stats();
            assert_eq!(stats.writes, 0, "{op:?}");
            assert_eq!(stats.write_failures, 1, "{op:?}");
            assert!(stats.last_error.is_some(), "{op:?}");
        }
    }

    #[test]
    fn unwritable_directory_downgrades_to_memory_only() {
        let io = Arc::new(MemIo::new());
        io.fail(IoOp::CreateDir, io::ErrorKind::PermissionDenied);
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        assert!(store.is_degraded());
        let list = small_list();
        let key = artifact_key(&list);
        // Degraded mode is inert: no I/O, no counters beyond the open error.
        store.store_lanes(&key, &build_lanes(&list));
        assert!(store.load_lanes(&key, &list).is_none());
        let stats = store.stats();
        assert!(stats.degraded);
        assert_eq!(stats.writes + stats.hits + stats.misses, 0);
        assert!(io.paths().is_empty());
    }

    #[test]
    fn load_race_retries_with_backoff_then_misses() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        // A writer died holding the lock: the file never appears.
        let key_bytes = encode_artifact_key(&key);
        let name = file_name("art", &key_bytes);
        io.insert_file(&format!("snap/{name}.lock"), Vec::new());
        assert!(store.load_lanes(&key, &list).is_none());
        assert_eq!(io.sleeps(), LOAD_RACE_RETRIES);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn concurrent_writer_lock_skips_the_publish() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        let key_bytes = encode_artifact_key(&key);
        let name = file_name("art", &key_bytes);
        io.insert_file(&format!("snap/{name}.lock"), Vec::new());
        store.store_lanes(&key, &build_lanes(&list));
        let stats = store.stats();
        // Losing the lock race is neither a write nor a failure.
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.write_failures, 0);
    }

    #[test]
    fn wrong_kind_and_key_mismatch_are_typed() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        store.store_lanes(&key, &build_lanes(&list));
        let key_bytes = encode_artifact_key(&key);
        let name = file_name("art", &key_bytes);
        let lanes_bytes = io.file(&format!("snap/{name}")).expect("written");

        // The same bytes presented as a dictionary: WrongKind.
        assert_eq!(
            decode_container(&lanes_bytes, KIND_DICTIONARY, Some(&key_bytes))
                .map(<[u8]>::len)
                .expect_err("kind must not match"),
            SnapshotError::WrongKind { found: KIND_LANES }
        );
        // The same bytes presented under a different key: KeyMismatch.
        let other = ArtifactKey::new(&list, 8, PlacementStrategy::Exhaustive, &[]);
        let other_bytes = encode_artifact_key(&other);
        assert_eq!(
            decode_container(&lanes_bytes, KIND_LANES, Some(&other_bytes))
                .map(<[u8]>::len)
                .expect_err("key must not match"),
            SnapshotError::KeyMismatch
        );
    }

    #[test]
    fn inspect_reports_valid_and_corrupt_files() {
        let list = small_list();
        let key = artifact_key(&list);
        let io = Arc::new(MemIo::new());
        let store = SnapshotStore::with_io(Arc::clone(&io) as Arc<dyn SnapshotIo>, "snap");
        store.store_lanes(&key, &build_lanes(&list));
        io.insert_file(
            "snap/junk-0000000000000000.snap",
            b"not a snapshot".to_vec(),
        );
        io.insert_file("snap/readme.txt", b"hello".to_vec());
        let mut rows = store.inspect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(rows.len(), 3);
        assert!(rows
            .iter()
            .any(|row| row.kind == "lanes" && row.status == "ok"));
        assert!(rows.iter().any(|row| row.kind == "corrupt"));
        assert!(rows.iter().any(|row| row.kind == "other"));
    }

    #[test]
    fn chaos_io_is_deterministic_per_seed() {
        let schedule = |seed: u64| {
            let io = MemIo::chaos(seed, 40);
            (0..32)
                .map(|index| io.write(&format!("f{index}"), b"x").is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8), "different seeds should differ");
        assert!(schedule(7).iter().any(|ok| !ok), "chaos injects failures");
        assert!(
            schedule(7).iter().any(|ok| *ok),
            "chaos is not total failure"
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
