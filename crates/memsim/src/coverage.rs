//! Coverage measurement of march tests over fault lists.
//!
//! Every fault target (simple primitive or linked fault) is simulated under
//! every coverage lane — the cross product of its enumerated cell placements
//! and the configured data backgrounds — by the selected
//! [`SimulationBackend`]; the targets themselves are fanned out over the
//! worker pool of a [`Session`](crate::Session) ([`measure_coverage`] is a
//! thin shim building a throwaway one). The report (counts, per-topology
//! break-down and the stable-sorted escape list) is byte-identical across
//! backends and thread counts.

use std::collections::BTreeMap;
use std::fmt;

use march_test::MarchTest;
use sram_fault_model::{Bit, DecoderFault, FaultList, FaultPrimitive, LinkTopology, LinkedFault};

use crate::backend::{enumerate_lanes, BackendKind, SimulationBackend};
use crate::lane::LaneWidth;
use crate::{InitialState, InstanceCells, PlacementStrategy};

/// Which kind of target escaped a march test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetKind {
    /// A simple (unlinked) fault primitive.
    Simple(FaultPrimitive),
    /// A linked fault.
    Linked(LinkedFault),
    /// An address-decoder fault class.
    Decoder(DecoderFault),
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetKind::Simple(fp) => write!(f, "{fp}"),
            TargetKind::Linked(lf) => write!(f, "{lf}"),
            TargetKind::Decoder(af) => write!(f, "{af}"),
        }
    }
}

/// One undetected (target, placement, background) combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escape {
    /// The fault that escaped.
    pub target: TargetKind,
    /// The cell assignment under which it escaped.
    pub cells: InstanceCells,
    /// The initial memory content under which it escaped.
    pub background: InitialState,
}

/// The total ordering key of an [`Escape`]: target notation, cell assignment
/// (victim, first aggressor, second aggressor — absent cells sort last) and a
/// background ordinal with the custom content.
pub type EscapeSortKey = (String, (usize, usize, usize), (u8, Vec<Bit>));

impl Escape {
    /// A total ordering key (target notation, cell assignment, background) used
    /// to keep escape reporting deterministic across backends and thread
    /// counts.
    #[must_use]
    pub fn sort_key(&self) -> EscapeSortKey {
        let cells = (
            self.cells.victim,
            self.cells.aggressor_first.map_or(usize::MAX, |cell| cell),
            self.cells.aggressor_second.map_or(usize::MAX, |cell| cell),
        );
        let background = match &self.background {
            InitialState::AllZero => (0, Vec::new()),
            InitialState::AllOne => (1, Vec::new()),
            InitialState::Checkerboard => (2, Vec::new()),
            InitialState::Custom(bits) => (3, bits.clone()),
        };
        (self.target.to_string(), cells, background)
    }
}

impl fmt::Display for Escape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} ({:?})",
            self.target, self.cells, self.background
        )
    }
}

/// Configuration of a coverage measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageConfig {
    /// Number of cells of the simulated memory (≥ 4).
    pub memory_cells: usize,
    /// How exhaustively cell placements are enumerated.
    pub strategy: PlacementStrategy,
    /// The initial memory contents under which the test must detect each fault.
    pub backgrounds: Vec<InitialState>,
    /// Which simulation backend evaluates the lanes of each target. Defaults
    /// to the bit-parallel packed engine, whose verdicts are byte-identical to
    /// the scalar reference (pass `BackendKind::Scalar` to opt out).
    pub backend: BackendKind,
    /// Number of worker threads the targets are fanned out over (`1` = serial,
    /// `0` = use the available parallelism). The report is identical for every
    /// value.
    pub threads: usize,
    /// The packed backend's lane width (`Auto` = narrowest word holding each
    /// target's lane count). The report is identical for every width.
    pub lane_width: LaneWidth,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            memory_cells: 8,
            strategy: PlacementStrategy::Representative,
            backgrounds: vec![InitialState::AllOne],
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
        }
    }
}

impl CoverageConfig {
    /// A thorough configuration: representative placements on an 8-cell memory, but
    /// every fault must be detected under both the all-zero and the all-one
    /// background.
    #[must_use]
    pub fn thorough() -> CoverageConfig {
        CoverageConfig {
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
            ..CoverageConfig::default()
        }
    }

    /// An exhaustive configuration: every placement on a small memory, both uniform
    /// backgrounds. Slow; intended for final verification runs.
    #[must_use]
    pub fn exhaustive() -> CoverageConfig {
        CoverageConfig {
            memory_cells: 6,
            strategy: PlacementStrategy::Exhaustive,
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
            ..CoverageConfig::default()
        }
    }

    /// Replaces the simulation backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> CoverageConfig {
        self.backend = backend;
        self
    }

    /// Replaces the worker-thread count (`0` = available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> CoverageConfig {
        self.threads = threads;
        self
    }

    /// Replaces the packed lane width.
    #[must_use]
    pub fn with_lane_width(mut self, lane_width: LaneWidth) -> CoverageConfig {
        self.lane_width = lane_width;
        self
    }
}

/// The result of measuring a march test's coverage over a fault list.
///
/// A fault counts as *covered* only if the test detects it under **every**
/// enumerated cell placement and initial background.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    test_name: String,
    list_name: String,
    total: usize,
    covered: usize,
    escapes: Vec<Escape>,
    by_topology: BTreeMap<LinkTopology, (usize, usize)>,
}

impl CoverageReport {
    /// The march test that was evaluated.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The fault list that was targeted.
    #[must_use]
    pub fn list_name(&self) -> &str {
        &self.list_name
    }

    /// Total number of targets in the list.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of covered targets.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Coverage percentage (100.0 for an empty list).
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }

    /// Returns `true` if every target is covered.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.covered == self.total
    }

    /// The undetected (target, placement, background) combinations, stable-sorted
    /// by target notation, cell assignment and background so that reports are
    /// byte-identical across backends and thread counts.
    #[must_use]
    pub fn escapes(&self) -> &[Escape] {
        &self.escapes
    }

    /// Per-topology `(covered, total)` counts for the linked-fault targets.
    #[must_use]
    pub fn by_topology(&self) -> &BTreeMap<LinkTopology, (usize, usize)> {
        &self.by_topology
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {}/{} covered ({:.1}%)",
            self.test_name,
            self.list_name,
            self.covered,
            self.total,
            self.percent()
        )
    }
}

/// Measures the coverage of `test` over `list` under the given configuration.
///
/// Every simple primitive and every linked fault of the list is instantiated on the
/// placements returned by [`enumerate_placements`](crate::enumerate_placements)
/// and simulated under every configured background by the configured backend;
/// the target is covered only if every combination is detected. Targets are
/// evaluated in parallel over `config.threads` workers.
///
/// This is now a thin shim constructing a throwaway [`Session`](crate::Session)
/// per call; long-lived callers should build one session and use
/// [`Session::coverage`](crate::Session::coverage), which re-uses its worker
/// pool across queries. The report is byte-identical either way.
#[must_use]
pub fn measure_coverage(
    test: &MarchTest,
    list: &FaultList,
    config: &CoverageConfig,
) -> CoverageReport {
    crate::Session::from_coverage_config(config).coverage(test, list)
}

/// Assembles a [`CoverageReport`] from the per-target first escapes, in target
/// order — shared by the session and (through it) the legacy free function.
/// Escapes are stable-sorted by [`Escape::sort_key`] so reports are
/// byte-identical across backends and thread counts.
pub(crate) fn assemble_coverage_report(
    test_name: &str,
    list_name: &str,
    targets: &[TargetKind],
    first_escapes: Vec<Option<Escape>>,
) -> CoverageReport {
    let mut covered = 0usize;
    let mut escapes = Vec::new();
    let mut by_topology: BTreeMap<LinkTopology, (usize, usize)> = BTreeMap::new();
    for (target, escape) in targets.iter().zip(first_escapes) {
        let detected = escape.is_none();
        if let TargetKind::Linked(fault) = target {
            let entry = by_topology.entry(fault.topology()).or_insert((0, 0));
            entry.1 += 1;
            if detected {
                entry.0 += 1;
            }
        }
        match escape {
            None => covered += 1,
            Some(escape) => escapes.push(escape),
        }
    }
    escapes.sort_by_cached_key(Escape::sort_key);

    CoverageReport {
        test_name: test_name.to_string(),
        list_name: list_name.to_string(),
        total: targets.len(),
        covered,
        escapes,
        by_topology,
    }
}

/// Enumerates the fault targets of `list` in report order: every simple
/// primitive first, then every linked fault, then every address-decoder fault.
/// Both coverage measurement and the generator's target batches rely on this
/// single ordering.
#[must_use]
pub fn enumerate_targets(list: &FaultList) -> Vec<TargetKind> {
    list.simple()
        .iter()
        .map(|primitive| TargetKind::Simple(primitive.clone()))
        .chain(
            list.linked()
                .iter()
                .map(|fault| TargetKind::Linked(fault.clone())),
        )
        .chain(
            list.decoders()
                .iter()
                .map(|fault| TargetKind::Decoder(*fault)),
        )
        .collect()
}

/// The first lane of `target` the test fails on, as an [`Escape`].
pub(crate) fn target_escape(
    backend: &dyn SimulationBackend,
    test: &MarchTest,
    target: &TargetKind,
    memory_cells: usize,
    strategy: PlacementStrategy,
    backgrounds: &[InitialState],
) -> Option<Escape> {
    let lanes = enumerate_lanes(target, memory_cells, strategy, backgrounds)
        .expect("coverage scope hosts the target's placements");
    lane_escape(backend, test, target, &lanes, memory_cells)
}

/// The first of the pre-enumerated `lanes` the test fails on, as an
/// [`Escape`] — the shared kernel of [`target_escape`] and the session's
/// cached-lane coverage path.
pub(crate) fn lane_escape(
    backend: &dyn SimulationBackend,
    test: &MarchTest,
    target: &TargetKind,
    lanes: &[crate::CoverageLane],
    memory_cells: usize,
) -> Option<Escape> {
    backend
        .first_undetected(test, target, lanes, memory_cells)
        .map(|index| Escape {
            target: target.clone(),
            cells: lanes[index].cells,
            background: lanes[index].background.clone(),
        })
}

/// Returns `true` if `test` detects the given linked fault under every placement and
/// background of `config`.
#[must_use]
pub fn detects_linked(test: &MarchTest, fault: &LinkedFault, config: &CoverageConfig) -> bool {
    let backend = config.backend.instance_with(config.lane_width);
    target_escape(
        backend.as_ref(),
        test,
        &TargetKind::Linked(fault.clone()),
        config.memory_cells,
        config.strategy,
        &config.backgrounds,
    )
    .is_none()
}

/// Returns `true` if `test` detects the given simple fault primitive under every
/// placement and background of `config`.
#[must_use]
pub fn detects_simple(
    test: &MarchTest,
    primitive: &FaultPrimitive,
    config: &CoverageConfig,
) -> bool {
    let backend = config.backend.instance_with(config.lane_width);
    target_escape(
        backend.as_ref(),
        test,
        &TargetKind::Simple(primitive.clone()),
        config.memory_cells,
        config.strategy,
        &config.backgrounds,
    )
    .is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn march_ss_covers_the_unlinked_static_faults() {
        let report = measure_coverage(
            &catalog::march_ss(),
            &FaultList::unlinked_static(),
            &CoverageConfig::thorough(),
        );
        assert!(report.is_complete(), "escapes: {:?}", report.escapes());
        assert_eq!(report.total(), 48);
        assert!((report.percent() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn mats_plus_does_not_cover_the_unlinked_static_faults() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::unlinked_static(),
            &CoverageConfig::default(),
        );
        assert!(!report.is_complete());
        assert!(!report.escapes().is_empty());
        assert!(report.covered() > 0);
    }

    #[test]
    fn march_abl1_covers_fault_list_2() {
        let report = measure_coverage(
            &catalog::march_abl1(),
            &FaultList::list_2(),
            &CoverageConfig::thorough(),
        );
        assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    }

    #[test]
    fn mats_plus_misses_single_cell_linked_faults() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::list_2(),
            &CoverageConfig::default(),
        );
        assert!(!report.is_complete());
    }

    #[test]
    fn report_accessors() {
        let report = measure_coverage(
            &catalog::march_c_minus(),
            &FaultList::list_2(),
            &CoverageConfig::default(),
        );
        assert_eq!(report.test_name(), "March C-");
        assert!(report.list_name().contains("Fault List #2"));
        assert_eq!(report.total(), 32);
        assert!(report.by_topology().contains_key(&LinkTopology::Lf1));
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn reports_are_identical_across_backends_and_thread_counts() {
        let list = FaultList::list_1();
        let test = catalog::march_c_minus();
        let baseline = measure_coverage(&test, &list, &CoverageConfig::thorough());
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            for threads in [1usize, 2, 4, 0] {
                let config = CoverageConfig::thorough()
                    .with_backend(backend)
                    .with_threads(threads);
                let report = measure_coverage(&test, &list, &config);
                assert_eq!(
                    report, baseline,
                    "report diverged for backend {backend} with {threads} threads"
                );
            }
        }
        for lane_width in LaneWidth::ALL {
            let config = CoverageConfig::thorough().with_lane_width(lane_width);
            let report = measure_coverage(&test, &list, &config);
            assert_eq!(report, baseline, "report diverged at width {lane_width}");
        }
    }

    #[test]
    fn escape_ordering_is_sorted() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::list_1(),
            &CoverageConfig::default(),
        );
        assert!(!report.escapes().is_empty());
        let keys: Vec<_> = report.escapes().iter().map(Escape::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn detects_helpers_respect_the_backend_knob() {
        let list = FaultList::list_2();
        let fault = &list.linked()[0];
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            let config = CoverageConfig::thorough().with_backend(backend);
            assert!(detects_linked(&catalog::march_sl(), fault, &config));
        }
        let primitive = &FaultList::unlinked_static().simple()[0].clone();
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            let config = CoverageConfig::thorough().with_backend(backend);
            assert!(detects_simple(&catalog::march_ss(), primitive, &config));
        }
    }
}
