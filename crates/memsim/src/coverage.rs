//! Coverage measurement of march tests over fault lists.

use std::collections::BTreeMap;
use std::fmt;

use march_test::MarchTest;
use sram_fault_model::{FaultList, FaultPrimitive, LinkTopology, LinkedFault};

use crate::{
    enumerate_placements, run_march, FaultSimulator, InitialState, InjectedFault, InstanceCells,
    LinkedFaultInstance, PlacementStrategy,
};

/// Which kind of target escaped a march test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetKind {
    /// A simple (unlinked) fault primitive.
    Simple(FaultPrimitive),
    /// A linked fault.
    Linked(LinkedFault),
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetKind::Simple(fp) => write!(f, "{fp}"),
            TargetKind::Linked(lf) => write!(f, "{lf}"),
        }
    }
}

/// One undetected (target, placement, background) combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Escape {
    /// The fault that escaped.
    pub target: TargetKind,
    /// The cell assignment under which it escaped.
    pub cells: InstanceCells,
    /// The initial memory content under which it escaped.
    pub background: InitialState,
}

impl fmt::Display for Escape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {} ({:?})", self.target, self.cells, self.background)
    }
}

/// Configuration of a coverage measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageConfig {
    /// Number of cells of the simulated memory (≥ 4).
    pub memory_cells: usize,
    /// How exhaustively cell placements are enumerated.
    pub strategy: PlacementStrategy,
    /// The initial memory contents under which the test must detect each fault.
    pub backgrounds: Vec<InitialState>,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            memory_cells: 8,
            strategy: PlacementStrategy::Representative,
            backgrounds: vec![InitialState::AllOne],
        }
    }
}

impl CoverageConfig {
    /// A thorough configuration: representative placements on an 8-cell memory, but
    /// every fault must be detected under both the all-zero and the all-one
    /// background.
    #[must_use]
    pub fn thorough() -> CoverageConfig {
        CoverageConfig {
            memory_cells: 8,
            strategy: PlacementStrategy::Representative,
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
        }
    }

    /// An exhaustive configuration: every placement on a small memory, both uniform
    /// backgrounds. Slow; intended for final verification runs.
    #[must_use]
    pub fn exhaustive() -> CoverageConfig {
        CoverageConfig {
            memory_cells: 6,
            strategy: PlacementStrategy::Exhaustive,
            backgrounds: vec![InitialState::AllZero, InitialState::AllOne],
        }
    }
}

/// The result of measuring a march test's coverage over a fault list.
///
/// A fault counts as *covered* only if the test detects it under **every**
/// enumerated cell placement and initial background.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageReport {
    test_name: String,
    list_name: String,
    total: usize,
    covered: usize,
    escapes: Vec<Escape>,
    by_topology: BTreeMap<LinkTopology, (usize, usize)>,
}

impl CoverageReport {
    /// The march test that was evaluated.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The fault list that was targeted.
    #[must_use]
    pub fn list_name(&self) -> &str {
        &self.list_name
    }

    /// Total number of targets in the list.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of covered targets.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Coverage percentage (100.0 for an empty list).
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }

    /// Returns `true` if every target is covered.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.covered == self.total
    }

    /// The undetected (target, placement, background) combinations.
    #[must_use]
    pub fn escapes(&self) -> &[Escape] {
        &self.escapes
    }

    /// Per-topology `(covered, total)` counts for the linked-fault targets.
    #[must_use]
    pub fn by_topology(&self) -> &BTreeMap<LinkTopology, (usize, usize)> {
        &self.by_topology
    }
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vs {}: {}/{} covered ({:.1}%)",
            self.test_name,
            self.list_name,
            self.covered,
            self.total,
            self.percent()
        )
    }
}

/// Measures the coverage of `test` over `list` under the given configuration.
///
/// Every simple primitive and every linked fault of the list is instantiated on the
/// placements returned by [`enumerate_placements`] and simulated under every
/// configured background; the target is covered only if every combination is
/// detected.
#[must_use]
pub fn measure_coverage(
    test: &MarchTest,
    list: &FaultList,
    config: &CoverageConfig,
) -> CoverageReport {
    let mut total = 0usize;
    let mut covered = 0usize;
    let mut escapes = Vec::new();
    let mut by_topology: BTreeMap<LinkTopology, (usize, usize)> = BTreeMap::new();

    for primitive in list.simple() {
        total += 1;
        match simple_escape(test, primitive, config) {
            None => covered += 1,
            Some(escape) => escapes.push(escape),
        }
    }

    for fault in list.linked() {
        total += 1;
        let entry = by_topology.entry(fault.topology()).or_insert((0, 0));
        entry.1 += 1;
        match linked_escape(test, fault, config) {
            None => {
                covered += 1;
                entry.0 += 1;
            }
            Some(escape) => escapes.push(escape),
        }
    }

    CoverageReport {
        test_name: test.name().to_string(),
        list_name: list.name().to_string(),
        total,
        covered,
        escapes,
        by_topology,
    }
}

/// Returns `true` if `test` detects the given linked fault under every placement and
/// background of `config`.
#[must_use]
pub fn detects_linked(test: &MarchTest, fault: &LinkedFault, config: &CoverageConfig) -> bool {
    linked_escape(test, fault, config).is_none()
}

/// Returns `true` if `test` detects the given simple fault primitive under every
/// placement and background of `config`.
#[must_use]
pub fn detects_simple(test: &MarchTest, primitive: &FaultPrimitive, config: &CoverageConfig) -> bool {
    simple_escape(test, primitive, config).is_none()
}

fn simple_placements(primitive: &FaultPrimitive, config: &CoverageConfig) -> Vec<InstanceCells> {
    let topology = if primitive.is_coupling() {
        LinkTopology::Lf2CouplingThenSingle
    } else {
        LinkTopology::Lf1
    };
    enumerate_placements(topology, config.memory_cells, config.strategy)
}

fn simple_escape(
    test: &MarchTest,
    primitive: &FaultPrimitive,
    config: &CoverageConfig,
) -> Option<Escape> {
    for cells in simple_placements(primitive, config) {
        for background in &config.backgrounds {
            let mut simulator = FaultSimulator::new(config.memory_cells, background)
                .expect("coverage memory configuration is valid");
            let injected = if primitive.is_coupling() {
                InjectedFault::coupling(
                    primitive.clone(),
                    cells.aggressor_first.expect("pair placement"),
                    cells.victim,
                    config.memory_cells,
                )
            } else {
                InjectedFault::single_cell(primitive.clone(), cells.victim, config.memory_cells)
            }
            .expect("enumerated placements are valid");
            simulator.inject(injected);
            if !run_march(test, &mut simulator).detected() {
                return Some(Escape {
                    target: TargetKind::Simple(primitive.clone()),
                    cells,
                    background: background.clone(),
                });
            }
        }
    }
    None
}

fn linked_escape(
    test: &MarchTest,
    fault: &LinkedFault,
    config: &CoverageConfig,
) -> Option<Escape> {
    for cells in enumerate_placements(fault.topology(), config.memory_cells, config.strategy) {
        for background in &config.backgrounds {
            let mut simulator = FaultSimulator::new(config.memory_cells, background)
                .expect("coverage memory configuration is valid");
            let instance = LinkedFaultInstance::new(fault.clone(), cells, config.memory_cells)
                .expect("enumerated placements are valid");
            simulator.inject_linked(&instance);
            if !run_march(test, &mut simulator).detected() {
                return Some(Escape {
                    target: TargetKind::Linked(fault.clone()),
                    cells,
                    background: background.clone(),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use march_test::catalog;

    #[test]
    fn march_ss_covers_the_unlinked_static_faults() {
        let report = measure_coverage(
            &catalog::march_ss(),
            &FaultList::unlinked_static(),
            &CoverageConfig::thorough(),
        );
        assert!(report.is_complete(), "escapes: {:?}", report.escapes());
        assert_eq!(report.total(), 48);
        assert!((report.percent() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn mats_plus_does_not_cover_the_unlinked_static_faults() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::unlinked_static(),
            &CoverageConfig::default(),
        );
        assert!(!report.is_complete());
        assert!(!report.escapes().is_empty());
        assert!(report.covered() > 0);
    }

    #[test]
    fn march_abl1_covers_fault_list_2() {
        let report = measure_coverage(
            &catalog::march_abl1(),
            &FaultList::list_2(),
            &CoverageConfig::thorough(),
        );
        assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    }

    #[test]
    fn mats_plus_misses_single_cell_linked_faults() {
        let report = measure_coverage(
            &catalog::mats_plus(),
            &FaultList::list_2(),
            &CoverageConfig::default(),
        );
        assert!(!report.is_complete());
    }

    #[test]
    fn report_accessors() {
        let report = measure_coverage(
            &catalog::march_c_minus(),
            &FaultList::list_2(),
            &CoverageConfig::default(),
        );
        assert_eq!(report.test_name(), "March C-");
        assert!(report.list_name().contains("Fault List #2"));
        assert_eq!(report.total(), 32);
        assert!(report.by_topology().contains_key(&LinkTopology::Lf1));
        assert!(!report.to_string().is_empty());
    }
}
