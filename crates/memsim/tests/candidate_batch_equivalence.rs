//! Property-based equivalence of batched candidate scoring: for random march
//! prefixes × candidate pools × fault targets × placements × backgrounds, the
//! verdicts of [`TargetBatch::score_pool`] must be byte-identical to scoring
//! every candidate on its own with [`TargetBatch::score`] — across both
//! simulation backends, every pool chunk size, and regardless of how the
//! batch was advanced (the packed path compacts pending lanes as it goes).

use march_test::{AddressOrder, MarchElement};
use proptest::prelude::*;
use sram_fault_model::{FaultList, Operation};
use sram_sim::{
    enumerate_lanes, BackendKind, CandidateBatch, InitialState, PlacementStrategy, TargetBatch,
    TargetKind,
};

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        prop::sample::select(AddressOrder::ALL.to_vec()),
        prop::collection::vec(arbitrary_operation(), 1..8),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty"))
}

/// A pool mixing random shapes with the library-like extremes (1-op and
/// 10-op elements) so padded words always hold heterogeneous lengths.
fn arbitrary_pool() -> impl Strategy<Value = Vec<MarchElement>> {
    prop::collection::vec(arbitrary_element(), 1..24)
}

fn arbitrary_prefix() -> impl Strategy<Value = Vec<MarchElement>> {
    prop::collection::vec(arbitrary_element(), 0..4)
}

fn arbitrary_target() -> impl Strategy<Value = TargetKind> {
    let mut targets: Vec<TargetKind> = FaultList::list_2()
        .linked()
        .iter()
        .take(6)
        .map(|fault| TargetKind::Linked(fault.clone()))
        .collect();
    targets.extend(
        FaultList::list_1()
            .linked()
            .iter()
            .filter(|fault| fault.cell_count() >= 2)
            .take(6)
            .map(|fault| TargetKind::Linked(fault.clone())),
    );
    targets.extend(
        FaultList::unlinked_static()
            .simple()
            .iter()
            .take(6)
            .map(|primitive| TargetKind::Simple(primitive.clone())),
    );
    prop::sample::select(targets)
}

fn arbitrary_strategy() -> impl Strategy<Value = PlacementStrategy> {
    prop_oneof![
        Just(PlacementStrategy::Representative),
        Just(PlacementStrategy::Exhaustive),
    ]
}

fn arbitrary_backgrounds() -> impl Strategy<Value = Vec<InitialState>> {
    prop_oneof![
        Just(vec![InitialState::AllOne]),
        Just(vec![InitialState::AllZero, InitialState::AllOne]),
        Just(vec![
            InitialState::Checkerboard,
            InitialState::AllZero,
            InitialState::AllOne,
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_verdicts_match_per_candidate_scoring(
        target in arbitrary_target(),
        strategy in arbitrary_strategy(),
        backgrounds in arbitrary_backgrounds(),
        prefix in arbitrary_prefix(),
        pool in arbitrary_pool(),
    ) {
        let lanes = enumerate_lanes(&target, 8, strategy, &backgrounds).unwrap();
        prop_assume!(!lanes.is_empty());

        let mut scalar = TargetBatch::new(target.clone(), lanes.clone(), 8, BackendKind::Scalar);
        let mut packed = TargetBatch::new(target, lanes, 8, BackendKind::Packed);
        for element in &prefix {
            let newly = scalar.advance(element);
            prop_assert_eq!(packed.advance(element), newly);
        }
        prop_assert_eq!(scalar.pending(), packed.pending());

        // The reference verdict: every candidate scored on its own against the
        // scalar batch.
        let sequential: Vec<usize> = pool.iter().map(|candidate| scalar.score(candidate)).collect();

        // Batched scoring agrees for every backend and pool chunk size (1
        // forces the per-candidate path, 64 the full-word wave path, the rest
        // mix both depending on how many lanes are still pending).
        for chunk in [1usize, 3, 64] {
            let mut batched_scalar = Vec::new();
            let mut batched_packed = Vec::new();
            for pool_chunk in CandidateBatch::chunked(&pool, chunk) {
                batched_scalar.extend(scalar.score_pool(&pool_chunk));
                batched_packed.extend(packed.score_pool(&pool_chunk));
            }
            prop_assert_eq!(&batched_scalar, &sequential, "scalar, chunk size {}", chunk);
            prop_assert_eq!(&batched_packed, &sequential, "packed, chunk size {}", chunk);
        }
    }
}

/// Scores `pool` against `batches` by sharding the (pool chunk × target
/// batch) grid over `threads` workers and merging in job order — the same
/// shape the generator's scorer uses.
fn sharded_scores(
    pool: &[MarchElement],
    batches: &[TargetBatch],
    chunk: usize,
    threads: usize,
) -> Vec<usize> {
    let pools = CandidateBatch::chunked(pool, chunk);
    let jobs: Vec<(usize, usize)> = (0..pools.len())
        .flat_map(|pool_index| (0..batches.len()).map(move |batch| (pool_index, batch)))
        .collect();
    let results = sram_sim::parallel_map(&jobs, threads, |&(pool_index, batch)| {
        batches[batch].score_pool(&pools[pool_index])
    });
    let mut offsets = Vec::new();
    let mut offset = 0usize;
    for pool_chunk in &pools {
        offsets.push(offset);
        offset += pool_chunk.len();
    }
    let mut scores = vec![0usize; pool.len()];
    for (&(pool_index, _), chunk_scores) in jobs.iter().zip(results) {
        for (index, score) in chunk_scores.into_iter().enumerate() {
            scores[offsets[pool_index] + index] += score;
        }
    }
    scores
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_scoring_is_invariant_in_batch_and_threads(
        prefix in arbitrary_prefix(),
        pool in arbitrary_pool(),
    ) {
        // The merged pool scores are identical for every (chunk, threads)
        // combination and across backends.
        let list = FaultList::list_2();
        let backgrounds = [InitialState::AllZero, InitialState::AllOne];
        let mut baseline: Option<Vec<usize>> = None;
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            let mut batches: Vec<TargetBatch> = sram_sim::enumerate_targets(&list)
                .into_iter()
                .map(|target| {
                    let lanes =
                        enumerate_lanes(&target, 8, PlacementStrategy::Representative, &backgrounds).unwrap();
                    TargetBatch::new(target, lanes, 8, backend)
                })
                .collect();
            for element in &prefix {
                for batch in &mut batches {
                    batch.advance(element);
                }
            }
            for (chunk, threads) in [(1usize, 1usize), (0, 1), (5, 2), (0, 0)] {
                let scores = sharded_scores(&pool, &batches, chunk, threads);
                match &baseline {
                    None => baseline = Some(scores),
                    Some(expected) => prop_assert_eq!(
                        &scores,
                        expected,
                        "backend {}, chunk {}, threads {}",
                        backend,
                        chunk,
                        threads
                    ),
                }
            }
        }
    }
}
