//! Corruption-fuzz and fault-injection chaos suite for the crash-safe
//! snapshot layer.
//!
//! The acceptance property is **loader totality**: for *every* single-byte
//! flip and *every* truncation length of a valid snapshot file, reloading
//! through a fresh engine must either replay a byte-identical artifact or
//! surface a typed [`sram_sim::SnapshotError`], quarantine the file and
//! rebuild in memory — never panic, never serve a wrong artifact. Because
//! snapshot encoding is canonical and deterministic, "the rebuild produced
//! the same artifact" is proved by the re-persisted snapshot being
//! byte-identical to the original file.
//!
//! On top of the exhaustive fuzz, seeded [`MemIo::chaos`] devices hammer the
//! whole pipeline with random I/O failures across simulated restarts, and a
//! real-filesystem leg does the corrupt-then-quarantine dance through
//! [`FsIo`] in a temp directory.

use std::sync::Arc;

use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{ArtifactStore, ExecPolicy, MemIo, Report, SharedEngine, SnapshotStore};

const DIR: &str = "snaps";

/// A fresh engine over `device`: empty artifact store, snapshot layer on the
/// shared in-memory filesystem — one simulated process start.
fn engine_on(device: &Arc<MemIo>) -> (Arc<SharedEngine>, Arc<SnapshotStore>) {
    let snapshots = SnapshotStore::with_io(device.clone(), DIR);
    let store = Arc::new(ArtifactStore::new());
    assert!(store.attach_snapshots(Arc::clone(&snapshots)));
    (
        SharedEngine::with_store(ExecPolicy::default(), store),
        snapshots,
    )
}

/// The single `.snap` file under `DIR` with the given name prefix.
fn snapshot_file(device: &MemIo, prefix: &str) -> (String, Vec<u8>) {
    let prefix = format!("{DIR}/{prefix}");
    let mut names: Vec<String> = device
        .paths()
        .into_iter()
        .filter(|path| path.starts_with(&prefix) && path.ends_with(".snap"))
        .collect();
    assert_eq!(names.len(), 1, "expected exactly one {prefix}*.snap file");
    let name = names.pop().expect("just checked");
    let bytes = device.file(&name).expect("file exists");
    (name, bytes)
}

/// Reloads the lane snapshot from `device` through a fresh engine and
/// asserts the totality contract: a valid file replays as a hit; a tampered
/// file is quarantined with a typed error, rebuilt in memory, and
/// re-persisted byte-identically to `pristine`.
fn assert_lanes_total(device: &Arc<MemIo>, list: &FaultList, path: &str, pristine: &[u8]) {
    let (engine, snapshots) = engine_on(device);
    engine
        .session()
        .with_memory_cells(8)
        .target_lanes(list)
        .expect("the scope hosts the list under every corruption");
    let stats = snapshots.stats();
    let tampered = device.file(path) != Some(pristine.to_vec());
    if tampered || stats.hits == 0 {
        // The loader rejected the file: the rejection must be typed, the
        // corpse quarantined, and the rebuild re-persisted byte-identically.
        assert_eq!(stats.quarantined, 1, "corrupt file not quarantined");
        assert!(
            stats.last_error.is_some(),
            "quarantine without a typed error"
        );
        assert_eq!(stats.writes, 1, "rebuild was not re-persisted");
    }
    assert_eq!(
        device.file(path).as_deref(),
        Some(pristine),
        "the re-persisted snapshot diverged from the pristine encoding"
    );
}

#[test]
fn every_single_byte_flip_of_a_lane_snapshot_is_survived() {
    let list = FaultList::address_decoder();
    let device = Arc::new(MemIo::new());
    let (engine, _) = engine_on(&device);
    engine
        .session()
        .with_memory_cells(8)
        .target_lanes(&list)
        .expect("warm enumeration succeeds");
    let (path, pristine) = snapshot_file(&device, "art-");

    // Seeded nonzero XOR masks: deterministic, never the identity flip.
    let mut mask_rng = 0x9E37_79B9_7F4A_7C15u64;
    for offset in 0..pristine.len() {
        mask_rng ^= mask_rng << 13;
        mask_rng ^= mask_rng >> 7;
        mask_rng ^= mask_rng << 17;
        let mask = (mask_rng as u8) | 1;
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= mask;

        let device = Arc::new(MemIo::new());
        device.insert_file(&path, corrupt);
        assert_lanes_total(&device, &list, &path, &pristine);
    }
}

#[test]
fn every_truncation_of_a_lane_snapshot_is_survived() {
    let list = FaultList::address_decoder();
    let device = Arc::new(MemIo::new());
    let (engine, _) = engine_on(&device);
    engine
        .session()
        .with_memory_cells(8)
        .target_lanes(&list)
        .expect("warm enumeration succeeds");
    let (path, pristine) = snapshot_file(&device, "art-");

    for length in 0..pristine.len() {
        let device = Arc::new(MemIo::new());
        device.insert_file(&path, pristine[..length].to_vec());
        assert_lanes_total(&device, &list, &path, &pristine);
    }
}

/// IEEE 802.3 CRC32, mirroring the snapshot container's checksum — so the
/// inflated-length fuzz case below can forge a header whose *only* lie is
/// the declared length.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[test]
fn inflated_length_headers_are_rejected_without_huge_allocations() {
    // A hostile header declaring a multi-GB container, with the checksum
    // recomputed so the length field is the only lie: the loader must reject
    // it on the cheap length comparison (typed error, quarantine, rebuild) —
    // it must never trust the declared length for sizing anything.
    let list = FaultList::address_decoder();
    let device = Arc::new(MemIo::new());
    let (engine, _) = engine_on(&device);
    engine
        .session()
        .with_memory_cells(8)
        .target_lanes(&list)
        .expect("warm enumeration succeeds");
    let (path, pristine) = snapshot_file(&device, "art-");

    for declared in [
        64u64 << 30,               // 64 GiB — would OOM if trusted
        u64::MAX,                  // maximal lie
        u64::from(u32::MAX) + 1,   // just past 4 GiB
        pristine.len() as u64 + 1, // off by one
        pristine.len() as u64 - 1, // off by one the other way
    ] {
        let mut corrupt = pristine.clone();
        corrupt[16..24].copy_from_slice(&declared.to_le_bytes());
        let crc = crc32(&corrupt[8..]);
        corrupt[4..8].copy_from_slice(&crc.to_le_bytes());

        let device = Arc::new(MemIo::new());
        device.insert_file(&path, corrupt);
        assert_lanes_total(&device, &list, &path, &pristine);
    }
}

#[test]
fn every_single_byte_flip_of_a_dictionary_snapshot_is_survived() {
    let test = catalog::mats_plus();
    let list = FaultList::address_decoder();
    let device = Arc::new(MemIo::new());
    let (engine, _) = engine_on(&device);
    let _ = engine
        .session()
        .with_memory_cells(8)
        .dictionary(&test, &list);
    let (path, pristine) = snapshot_file(&device, "dict-");

    let mut mask_rng = 0xD1B5_4A32_D192_ED03u64;
    for offset in 0..pristine.len() {
        mask_rng ^= mask_rng << 13;
        mask_rng ^= mask_rng >> 7;
        mask_rng ^= mask_rng << 17;
        let mask = (mask_rng as u8) | 1;
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= mask;

        let device = Arc::new(MemIo::new());
        device.insert_file(&path, corrupt);
        let (engine, snapshots) = engine_on(&device);
        let _ = engine
            .session()
            .with_memory_cells(8)
            .dictionary(&test, &list);
        let stats = snapshots.stats();
        assert_eq!(stats.quarantined, 1, "flip at {offset} not quarantined");
        assert!(
            stats.last_error.is_some(),
            "flip at {offset}: untyped error"
        );
        assert_eq!(
            device.file(&path).as_deref(),
            Some(pristine.as_slice()),
            "flip at {offset}: rebuilt dictionary diverged from pristine"
        );
    }
}

#[test]
fn every_truncation_of_a_dictionary_snapshot_is_survived() {
    let test = catalog::mats_plus();
    let list = FaultList::address_decoder();
    let device = Arc::new(MemIo::new());
    let (engine, _) = engine_on(&device);
    let _ = engine
        .session()
        .with_memory_cells(8)
        .dictionary(&test, &list);
    let (path, pristine) = snapshot_file(&device, "dict-");

    for length in 0..pristine.len() {
        let device = Arc::new(MemIo::new());
        device.insert_file(&path, pristine[..length].to_vec());
        let (engine, snapshots) = engine_on(&device);
        let _ = engine
            .session()
            .with_memory_cells(8)
            .dictionary(&test, &list);
        let stats = snapshots.stats();
        assert_eq!(stats.quarantined, 1, "length {length} not quarantined");
        assert_eq!(
            device.file(&path).as_deref(),
            Some(pristine.as_slice()),
            "length {length}: rebuilt dictionary diverged from pristine"
        );
    }
}

/// Full-pipeline chaos: a device failing ~a third of all I/O, shared across
/// two simulated restarts. Every report must stay byte-identical to the
/// snapshot-less golden engine — persistence may silently degrade, but it
/// may never panic or change an answer.
#[test]
fn seeded_io_chaos_never_changes_a_report() {
    let test = catalog::march_ss();
    let list = FaultList::list_2();
    let primitive = sram_fault_model::Ffm::all_fault_primitives()
        .into_iter()
        .find(|fp| !fp.is_coupling())
        .expect("the FFM space has single-cell primitives");
    let injected = sram_sim::InjectedFault::single_cell(primitive, 7, 8)
        .expect("the victim address is in scope");
    let transcript = |engine: &Arc<SharedEngine>| {
        let session = engine.session().with_memory_cells(8);
        let coverage = session
            .try_coverage(&test, &list)
            .expect("the scope hosts the list")
            .to_json();
        let syndrome = session
            .observe(&test, &injected)
            .expect("the scope hosts the injected fault");
        let dictionary = session.dictionary(&test, &list);
        let diagnosis = session.diagnose(&syndrome, &dictionary).to_json();
        (coverage, diagnosis)
    };
    let golden = transcript(&SharedEngine::new(ExecPolicy::default()));

    for seed in [1u64, 3, 5, 7, 42] {
        let device = Arc::new(MemIo::chaos(seed, 35));
        for restart in 0..2 {
            let (engine, snapshots) = engine_on(&device);
            assert_eq!(
                transcript(&engine),
                golden,
                "seed {seed}, restart {restart}: chaos I/O changed a report \
                 ({:?})",
                snapshots.stats()
            );
        }
    }
}

/// The same corrupt-quarantine-rebuild protocol through the production
/// [`sram_sim::FsIo`] on a real temp directory: a byte flipped on disk is
/// detected, the corpse lands in `quarantine/`, and the rebuilt snapshot is
/// byte-identical to the pristine one.
#[test]
fn on_disk_corruption_is_quarantined_and_rebuilt() {
    let dir = std::env::temp_dir().join(format!(
        "sram-sim-snapshot-chaos-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let dir_text = dir.to_string_lossy().to_string();
    let list = FaultList::address_decoder();

    let warm = |expect_attach: bool| -> Arc<SharedEngine> {
        let snapshots = SnapshotStore::open(&dir_text);
        let store = Arc::new(ArtifactStore::new());
        assert_eq!(store.attach_snapshots(snapshots), expect_attach);
        SharedEngine::with_store(ExecPolicy::default(), store)
    };
    warm(true)
        .session()
        .with_memory_cells(8)
        .target_lanes(&list)
        .expect("warm enumeration succeeds");

    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("snapshot dir exists")
        .filter_map(Result::ok)
        .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "snap"))
        .collect();
    assert_eq!(entries.len(), 1);
    let path = entries[0].path();
    let pristine = std::fs::read(&path).expect("snapshot readable");
    let mut corrupt = pristine.clone();
    let middle = corrupt.len() / 2;
    corrupt[middle] ^= 0x40;
    std::fs::write(&path, &corrupt).expect("corruption written");

    warm(true)
        .session()
        .with_memory_cells(8)
        .target_lanes(&list)
        .expect("rebuild succeeds despite on-disk corruption");
    assert_eq!(
        std::fs::read(&path).expect("rebuilt snapshot readable"),
        pristine,
        "rebuilt snapshot diverged from the pristine encoding"
    );
    let quarantined = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir exists")
        .filter_map(Result::ok)
        .count();
    assert_eq!(quarantined, 1, "the corrupt corpse was not quarantined");

    let _ = std::fs::remove_dir_all(&dir);
}
