//! Property-based equivalence of the simulation backends: for random march
//! tests × fault targets × placements × backgrounds, the bit-parallel
//! [`PackedBackend`] must produce exactly the detection verdicts and escape
//! sets of the reference [`ScalarBackend`], and `measure_coverage` must be
//! byte-identical across backends and thread counts.

use march_test::{AddressOrder, MarchElement, MarchTest};
use proptest::prelude::*;
use sram_fault_model::{FaultList, Ffm, Operation};
use sram_sim::{
    enumerate_lanes, measure_coverage, BackendKind, CoverageConfig, InitialState, LaneWidth,
    PackedBackend, PlacementStrategy, ScalarBackend, SimulationBackend, TargetKind,
};

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        prop::sample::select(AddressOrder::ALL.to_vec()),
        prop::collection::vec(arbitrary_operation(), 1..8),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty"))
}

fn arbitrary_test() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec(arbitrary_element(), 1..6)
        .prop_map(|elements| MarchTest::new("prop", elements).expect("non-empty"))
}

fn arbitrary_strategy() -> impl Strategy<Value = PlacementStrategy> {
    prop_oneof![
        Just(PlacementStrategy::Representative),
        Just(PlacementStrategy::Exhaustive),
    ]
}

fn arbitrary_backgrounds() -> impl Strategy<Value = Vec<InitialState>> {
    prop_oneof![
        Just(vec![InitialState::AllOne]),
        Just(vec![InitialState::AllZero]),
        Just(vec![InitialState::AllZero, InitialState::AllOne]),
        Just(vec![
            InitialState::Checkerboard,
            InitialState::AllOne,
            InitialState::AllZero,
        ]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-lane detection verdicts agree between the backends for random march
    /// tests against random linked faults of Fault List #1 (all topologies).
    #[test]
    fn linked_fault_verdicts_are_backend_invariant(
        test in arbitrary_test(),
        fault_index in 0usize..844,
        strategy in arbitrary_strategy(),
        backgrounds in arbitrary_backgrounds(),
        memory_cells in 4usize..9,
    ) {
        let list = FaultList::list_1();
        let fault = &list.linked()[fault_index % list.linked().len()];
        let target = TargetKind::Linked(fault.clone());
        let lanes = enumerate_lanes(&target, memory_cells, strategy, &backgrounds).unwrap();
        let scalar = ScalarBackend.lane_verdicts(&test, &target, &lanes, memory_cells);
        // Every packed lane width must match the scalar reference exactly.
        for width in LaneWidth::ALL {
            let backend = PackedBackend::with_width(width);
            let packed = backend.lane_verdicts(&test, &target, &lanes, memory_cells);
            prop_assert_eq!(&scalar, &packed, "verdicts diverged for {} at width {}", fault, width);
            prop_assert_eq!(
                ScalarBackend.first_undetected(&test, &target, &lanes, memory_cells),
                backend.first_undetected(&test, &target, &lanes, memory_cells)
            );
        }
    }

    /// Same for the 48 unlinked realistic fault primitives.
    #[test]
    fn simple_primitive_verdicts_are_backend_invariant(
        test in arbitrary_test(),
        primitive_index in 0usize..48,
        strategy in arbitrary_strategy(),
        backgrounds in arbitrary_backgrounds(),
        memory_cells in 4usize..9,
    ) {
        let primitives = Ffm::all_fault_primitives();
        let primitive = primitives[primitive_index % primitives.len()].clone();
        let target = TargetKind::Simple(primitive);
        let lanes = enumerate_lanes(&target, memory_cells, strategy, &backgrounds).unwrap();
        let scalar = ScalarBackend.lane_verdicts(&test, &target, &lanes, memory_cells);
        let packed = PackedBackend::default().lane_verdicts(&test, &target, &lanes, memory_cells);
        prop_assert_eq!(scalar, packed);
    }

    /// Full coverage reports — counts, per-topology break-down and the
    /// stable-sorted escape set — are byte-identical across backends and
    /// thread counts for random march tests.
    #[test]
    fn coverage_reports_are_backend_and_thread_invariant(
        test in arbitrary_test(),
        backgrounds in arbitrary_backgrounds(),
        memory_cells in 4usize..9,
    ) {
        let list = FaultList::list_2();
        let base = CoverageConfig {
            memory_cells,
            strategy: PlacementStrategy::Representative,
            backgrounds,
            ..CoverageConfig::default()
        };
        let reference = measure_coverage(&test, &list, &base);
        for backend in [BackendKind::Scalar, BackendKind::Packed] {
            for threads in [1usize, 3, 0] {
                let config = base.clone().with_backend(backend).with_threads(threads);
                let report = measure_coverage(&test, &list, &config);
                prop_assert_eq!(
                    &report,
                    &reference,
                    "report diverged: backend {} threads {}",
                    backend,
                    threads
                );
            }
        }
    }
}

/// Deterministic cross-check on the published catalogue: every catalogue test
/// against every fault list, both backends, equal escape sets.
#[test]
fn catalogue_escape_sets_match_across_backends() {
    let lists = [
        FaultList::unlinked_static(),
        FaultList::list_2(),
        FaultList::list_1(),
    ];
    for test in march_test::catalog::all() {
        for list in &lists {
            let scalar = measure_coverage(
                &test,
                list,
                &CoverageConfig::thorough().with_backend(BackendKind::Scalar),
            );
            let packed = measure_coverage(
                &test,
                list,
                &CoverageConfig::thorough().with_backend(BackendKind::Packed),
            );
            assert_eq!(
                scalar.escapes(),
                packed.escapes(),
                "escape sets diverged for {} vs {}",
                test.name(),
                list.name()
            );
            assert_eq!(scalar, packed);
        }
    }
}
