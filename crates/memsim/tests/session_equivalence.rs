//! Property-based equivalence of the session API and the legacy free
//! functions: for random march tests × fault lists × scopes × execution
//! policies, [`Session`] methods must produce **byte-identical** reports to
//! the free-function paths, and repeated session calls must observably re-use
//! the same worker pool.

use march_test::{AddressOrder, MarchElement, MarchTest};
use proptest::prelude::*;
use sram_fault_model::{FaultList, Ffm, Operation};
use sram_sim::{
    measure_coverage, run_march, BackendKind, CoverageConfig, ExecPolicy, FaultSimulator,
    InitialState, InjectedFault, PlacementStrategy, Session, Syndrome,
};

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        prop::sample::select(AddressOrder::ALL.to_vec()),
        prop::collection::vec(arbitrary_operation(), 1..8),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty"))
}

fn arbitrary_test() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec(arbitrary_element(), 1..6)
        .prop_map(|elements| MarchTest::new("prop", elements).expect("non-empty"))
}

fn arbitrary_backgrounds() -> impl Strategy<Value = Vec<InitialState>> {
    prop_oneof![
        Just(vec![InitialState::AllOne]),
        Just(vec![InitialState::AllZero]),
        Just(vec![InitialState::AllZero, InitialState::AllOne]),
    ]
}

fn arbitrary_backend() -> impl Strategy<Value = BackendKind> {
    prop_oneof![Just(BackendKind::Scalar), Just(BackendKind::Packed)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Session::coverage` equals `measure_coverage` — and, transitively, the
    /// serial scalar reference — for every backend, thread count and scope.
    #[test]
    fn session_coverage_is_byte_identical_to_the_legacy_path(
        test in arbitrary_test(),
        backgrounds in arbitrary_backgrounds(),
        memory_cells in 4usize..9,
        backend in arbitrary_backend(),
        threads in 0usize..4,
    ) {
        let list = FaultList::list_2();
        // Independent serial scalar reference.
        let reference = measure_coverage(&test, &list, &CoverageConfig {
            memory_cells,
            strategy: PlacementStrategy::Representative,
            backgrounds: backgrounds.clone(),
            backend: BackendKind::Scalar,
            threads: 1,
        });
        let config = CoverageConfig {
            memory_cells,
            strategy: PlacementStrategy::Representative,
            backgrounds,
            backend,
            threads,
        };
        let session = Session::from_coverage_config(&config);
        let report = session.coverage(&test, &list);
        prop_assert_eq!(&report, &measure_coverage(&test, &list, &config));
        prop_assert_eq!(&report, &reference,
            "session diverged from the serial scalar reference: backend {} threads {}",
            backend, threads);
    }

    /// `Session::run` / `Session::observe` equal the manual
    /// simulator + `run_march` path for every single-cell primitive.
    #[test]
    fn session_run_matches_run_march(
        primitive_index in 0usize..48,
        victim in 0usize..6,
        all_one in any::<bool>(),
    ) {
        let primitives = Ffm::all_fault_primitives();
        let primitive = primitives[primitive_index % primitives.len()].clone();
        let background = if all_one { InitialState::AllOne } else { InitialState::AllZero };
        let test = march_test::catalog::march_ss();

        let session = Session::default()
            .with_memory_cells(6)
            .with_backgrounds(vec![background.clone()]);
        let fault = if primitive.is_coupling() {
            InjectedFault::coupling(primitive, (victim + 1) % 6, victim, 6).unwrap()
        } else {
            InjectedFault::single_cell(primitive, victim, 6).unwrap()
        };

        let mut manual = FaultSimulator::new(6, &background).unwrap();
        manual.inject(fault.clone());
        let reference = run_march(&test, &mut manual);

        prop_assert_eq!(session.run(&test, &fault).unwrap(), reference.clone());
        prop_assert_eq!(
            session.observe(&test, &fault).unwrap(),
            Syndrome::from_run(&reference)
        );
    }
}

/// The pool-reuse guarantee: two sequential session calls are served by the
/// same resident workers — the worker-generation counter never moves after
/// construction, while the job counter does.
#[test]
fn sequential_session_calls_do_not_respawn_workers() {
    let session = Session::new(ExecPolicy::default().with_threads(3));
    let spawned = session.workers_spawned();
    assert_eq!(spawned, 2, "threads - 1 workers spawned at construction");

    let list = FaultList::list_1();
    let first = session.coverage(&march_test::catalog::march_sl(), &list);
    assert_eq!(session.workers_spawned(), spawned, "first call respawned");
    let second = session.coverage(&march_test::catalog::march_sl(), &list);
    assert_eq!(session.workers_spawned(), spawned, "second call respawned");
    assert_eq!(first, second);
    assert_eq!(
        session.jobs_executed(),
        2,
        "both calls went through the pool"
    );
}

/// The legacy `detects_*` helpers still agree with session coverage.
#[test]
fn detects_helpers_agree_with_session_coverage() {
    let list = FaultList::list_2();
    let config = CoverageConfig::thorough();
    let session = Session::from_coverage_config(&config);
    let report = session.coverage(&march_test::catalog::march_sl(), &list);
    assert!(report.is_complete());
    for fault in list.linked().iter().take(4) {
        assert!(sram_sim::detects_linked(
            &march_test::catalog::march_sl(),
            fault,
            &config
        ));
    }
}
