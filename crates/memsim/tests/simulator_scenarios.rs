//! Scenario and property-based tests of the fault simulator: per-family detection
//! conditions, masking behaviour and coverage-report consistency.

use march_test::{catalog, MarchTest};
use proptest::prelude::*;
use sram_fault_model::{FaultList, Ffm, LinkTopology, Operation};
use sram_sim::{
    measure_coverage, run_march, CoverageConfig, FaultSimulator, InitialState, InjectedFault,
    InstanceCells, LinkedFaultInstance, PlacementStrategy,
};

fn simulator_with(primitive: sram_fault_model::FaultPrimitive, victim: usize) -> FaultSimulator {
    let mut simulator = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
    simulator.inject(InjectedFault::single_cell(primitive, victim, 8).unwrap());
    simulator
}

#[test]
fn detection_conditions_per_single_cell_family() {
    // The textbook detection conditions, checked against well-known tests:
    //  - MATS+ detects SF and TF but misses WDF, DRDF (no non-transition writes /
    //    double reads);
    //  - March C- additionally misses WDF and DRDF;
    //  - March SS detects everything single-cell.
    let families_missed_by_mats = [
        Ffm::WriteDestructiveFault,
        Ffm::DeceptiveReadDestructiveFault,
    ];
    for family in families_missed_by_mats {
        let mut any_missed = false;
        for fp in family.fault_primitives() {
            let mut sim = simulator_with(fp, 3);
            if !run_march(&catalog::mats_plus(), &mut sim).detected() {
                any_missed = true;
            }
        }
        assert!(any_missed, "MATS+ unexpectedly detects every {family}");
    }
    for family in Ffm::single_cell() {
        for fp in family.fault_primitives() {
            let mut sim = simulator_with(fp.clone(), 5);
            assert!(
                run_march(&catalog::march_ss(), &mut sim).detected(),
                "March SS must detect {fp}"
            );
        }
    }
}

#[test]
fn coupling_faults_require_both_address_orders() {
    // A single ascending element cannot detect a disturb coupling fault whose
    // aggressor sits *above* the victim when the disturbance is re-written before
    // the victim is ever read again; the descending pass of March C- handles it.
    let cfds = Ffm::DisturbCoupling
        .fault_primitives()
        .into_iter()
        .find(|fp| fp.notation() == "<0w1;0/1/->")
        .unwrap();

    let ascending_only = MarchTest::parse("up only", "⇕(w0); ⇑(r0,w1); ⇕(r1)").unwrap();
    let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
    sim.inject(InjectedFault::coupling(cfds.clone(), 6, 1, 8).unwrap());
    assert!(
        !run_march(&ascending_only, &mut sim).detected(),
        "an ascending-only test should miss an aggressor-above-victim CFds whose victim is rewritten"
    );

    let mut sim = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
    sim.inject(InjectedFault::coupling(cfds, 6, 1, 8).unwrap());
    assert!(run_march(&catalog::march_c_minus(), &mut sim).detected());
}

#[test]
fn linked_fault_masking_defeats_march_ss_but_not_march_sl_on_lf1() {
    // Find a single-cell linked fault that March SS misses (the motivation of the
    // paper) and confirm the linked-fault tests still catch it.
    let list = FaultList::list_2();
    let config = CoverageConfig::thorough();
    let ss_report = measure_coverage(&catalog::march_ss(), &list, &config);
    let sl_report = measure_coverage(&catalog::march_sl(), &list, &config);
    let abl1_report = measure_coverage(&catalog::march_abl1(), &list, &config);
    assert!(sl_report.is_complete());
    assert!(abl1_report.is_complete());
    // March SS might or might not cover every LF1 under our semantics, but it must
    // never do better than March SL.
    assert!(ss_report.covered() <= sl_report.covered());
}

#[test]
fn coverage_report_escape_accounting_is_consistent() {
    let list = FaultList::list_1();
    let report = measure_coverage(&catalog::march_c_minus(), &list, &CoverageConfig::default());
    assert_eq!(report.total(), list.linked().len());
    assert_eq!(report.covered() + report.escapes().len(), report.total());
    let by_topology: usize = report.by_topology().values().map(|(_, total)| *total).sum();
    assert_eq!(by_topology, list.linked().len());
    let covered_by_topology: usize = report
        .by_topology()
        .values()
        .map(|(covered, _)| *covered)
        .sum();
    assert_eq!(covered_by_topology, report.covered());
}

#[test]
fn exhaustive_placements_agree_with_representative_on_complete_tests() {
    // March SL covers list #2 under representative placements; exhaustive placement
    // enumeration must agree (completeness is placement-independent for it).
    let list = FaultList::list_2();
    let representative = measure_coverage(&catalog::march_sl(), &list, &CoverageConfig::thorough());
    let exhaustive = measure_coverage(&catalog::march_sl(), &list, &CoverageConfig::exhaustive());
    assert!(representative.is_complete());
    assert!(exhaustive.is_complete());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Waiting (the `t` operation) never changes the memory content and never
    /// produces detections on its own for operation-sensitized faults.
    #[test]
    fn wait_operations_are_inert(cell in 0usize..8, fault_index in 0usize..48) {
        let primitives = Ffm::all_fault_primitives();
        let primitive = primitives[fault_index % primitives.len()].clone();
        let mut simulator = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
        let injected = if primitive.is_coupling() {
            InjectedFault::coupling(primitive, 0, 4, 8).unwrap()
        } else {
            InjectedFault::single_cell(primitive, 4, 8).unwrap()
        };
        simulator.inject(injected);
        let before: Vec<_> = simulator.faulty_memory().as_slice().to_vec();
        let outcome = simulator.apply(cell, Operation::Wait);
        prop_assert!(!outcome.mismatch());
        prop_assert_eq!(simulator.faulty_memory().as_slice(), &before[..]);
    }

    /// Every linked fault of list #1, instantiated anywhere, is detected by at
    /// least one of the linked-fault tests of the catalogue (March SL or the
    /// paper's ABL) — i.e. nothing in our fault lists is untestable.
    #[test]
    fn every_linked_fault_is_testable(index in 0usize..844, seed in 0usize..16) {
        let list = FaultList::list_1();
        let fault = &list.linked()[index % list.linked().len()];
        let placements = sram_sim::enumerate_placements(
            fault.topology(),
            8,
            PlacementStrategy::Representative,
        )
        .unwrap();
        let cells = placements[seed % placements.len()];
        let background = if seed % 2 == 0 { InitialState::AllZero } else { InitialState::AllOne };

        let mut detected = false;
        for test in [catalog::march_sl(), catalog::march_abl(), catalog::march_rabl()] {
            let mut simulator = FaultSimulator::new(8, &background).unwrap();
            let instance = LinkedFaultInstance::new(fault.clone(), cells, 8).unwrap();
            simulator.inject_linked(&instance);
            if run_march(&test, &mut simulator).detected() {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "{fault} escaped every linked-fault test at {cells}");
    }

    /// Single-cell linked-fault instances behave identically on every victim cell
    /// (translation invariance of the simulator).
    #[test]
    fn lf1_detection_is_translation_invariant(index in 0usize..32, a in 0usize..8, b in 0usize..8) {
        let list = FaultList::list_2();
        let fault = &list.linked()[index % list.linked().len()];
        prop_assume!(fault.topology() == LinkTopology::Lf1);
        let test = catalog::march_lf1();
        let mut outcomes = Vec::new();
        for victim in [a, b] {
            let mut simulator = FaultSimulator::new(8, &InitialState::AllOne).unwrap();
            let instance =
                LinkedFaultInstance::new(fault.clone(), InstanceCells::single(victim), 8).unwrap();
            simulator.inject_linked(&instance);
            outcomes.push(run_march(&test, &mut simulator).detected());
        }
        prop_assert_eq!(outcomes[0], outcomes[1]);
    }
}
