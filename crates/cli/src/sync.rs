//! The CLI's synchronisation façade (see `sram_sim`'s `sync` module for the
//! pattern).
//!
//! The serve loop imports every concurrency primitive it uses — channels,
//! locks, threads, clocks — through this module. Normal builds re-export
//! `std` unchanged; under `--cfg interleave` the instrumented `interleave`
//! versions take their place, so the serve-loop model tests can explore the
//! rendezvous-backpressure and timeout protocols schedule-by-schedule.
//! `Instant` is the interesting one: inside a model execution it reads the
//! scheduler's virtual clock, which is what makes deadline races explorable.

#[cfg(not(interleave))]
pub use std::sync::{mpsc, Arc, Mutex, PoisonError};

#[cfg(not(interleave))]
pub use std::thread;

// lint: allow(timing) — the façade is the sanctioned doorway to the real
// clock; serve-path timing goes virtual under cfg(interleave).
#[cfg(not(interleave))]
pub use std::time::{Duration, Instant};

#[cfg(interleave)]
pub use interleave::sync::{mpsc, Arc, Mutex, PoisonError};

#[cfg(interleave)]
pub use interleave::thread;

#[cfg(interleave)]
pub use interleave::time::{Duration, Instant};
