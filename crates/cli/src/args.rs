//! Hand-rolled argument parsing for the `march-codex` binary.

use std::error::Error;
use std::fmt;

use march_test::AddressOrder;
use sram_sim::{BackendKind, LaneWidth};

/// Errors produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub(crate) String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ParseArgsError {}

/// Which fault list a coverage or generation command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageTarget {
    /// The paper's Fault List #1 (single-, two- and three-cell static linked
    /// faults).
    List1,
    /// The paper's Fault List #2 (single-cell static linked faults).
    List2,
    /// The 48 unlinked realistic static fault primitives.
    Unlinked,
}

impl CoverageTarget {
    pub(crate) fn parse(text: &str) -> Result<CoverageTarget, ParseArgsError> {
        match text {
            "1" | "list1" | "#1" => Ok(CoverageTarget::List1),
            "2" | "list2" | "#2" => Ok(CoverageTarget::List2),
            "unlinked" | "simple" | "static" => Ok(CoverageTarget::Unlinked),
            other => Err(ParseArgsError(format!(
                "unknown fault list `{other}` (expected 1, 2 or unlinked)"
            ))),
        }
    }

    /// A human-readable label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CoverageTarget::List1 => "Fault List #1",
            CoverageTarget::List2 => "Fault List #2",
            CoverageTarget::Unlinked => "unlinked static faults",
        }
    }
}

/// Which fault domain a coverage/generation/minimisation command targets:
/// the cell-array FFM lists, the address-decoder fault classes, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultDomain {
    /// Cell-array faults only (the selected `--list`). The default.
    #[default]
    Ffm,
    /// Address-decoder faults only (`--list` is not required).
    Af,
    /// The selected `--list` extended with the address-decoder fault classes.
    All,
}

impl FaultDomain {
    pub(crate) fn parse(text: &str) -> Result<FaultDomain, ParseArgsError> {
        match text.trim().to_ascii_lowercase().as_str() {
            "ffm" => Ok(FaultDomain::Ffm),
            "af" => Ok(FaultDomain::Af),
            "all" => Ok(FaultDomain::All),
            other => Err(ParseArgsError(format!(
                "unknown fault domain `{other}` (expected ffm, af or all)"
            ))),
        }
    }
}

/// One parsed `march-codex` invocation.
///
/// (`PartialEq` only: `Coverage::confidence` is an `f64`.)
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `catalog` — list the catalogue of published march tests.
    Catalog,
    /// `show <name>` — print one march test.
    Show {
        /// The (case-insensitive) catalogue name.
        name: String,
    },
    /// `generate [--list <1|2>] [--faults ffm|af|all] [--cells N] [--no-removal]
    /// [--order up|down] [--name NAME] [--exhaustive] [--backend scalar|packed]
    /// [--threads N] [--batch N] [--json]`.
    Generate {
        /// The target fault list (required unless `--faults af`).
        list: Option<CoverageTarget>,
        /// The fault domain: cell-array FFMs, address-decoder faults, or both.
        faults: FaultDomain,
        /// Memory size in cells (`None` = the scope default).
        cells: Option<usize>,
        /// Disable the redundancy-removal pass.
        no_removal: bool,
        /// Restrict every element to a single address order.
        order: Option<AddressOrder>,
        /// Name of the generated test.
        name: Option<String>,
        /// Verify with exhaustive placements after generation.
        exhaustive: bool,
        /// Which simulation backend evaluates candidates and verification
        /// (defaults to the packed engine; `--backend scalar` opts out).
        backend: BackendKind,
        /// Worker threads for scoring/verification (0 = auto).
        threads: usize,
        /// Candidates packed per scoring batch (0 = full 64-lane words,
        /// 1 = per-candidate scoring).
        batch: usize,
        /// Coverage lanes per packed word (auto = narrowest fitting width).
        lane_width: LaneWidth,
        /// Emit the machine-readable `Report` JSON instead of the text form.
        json: bool,
    },
    /// `coverage [--test <name>] [--list <1|2|unlinked>] [--faults ffm|af|all]
    /// [--cells N] [--exhaustive] [--sample N --seed S --confidence C]
    /// [--backend scalar|packed] [--threads N]
    /// [--lane-width auto|64|128|256] [--json]`.
    ///
    /// Without an explicit `--threads`, memories larger than 64 cells fan out
    /// over every available core (`--threads 0`): large-memory coverage is
    /// exactly the workload the packed + threaded path exists for.
    ///
    /// `--sample N` switches from enumeration to a seeded Monte-Carlo
    /// campaign over the exhaustive placement space; the report carries a
    /// Wilson-score confidence interval instead of an exact verdict.
    Coverage {
        /// Catalogue name of the march test to evaluate (default: March SS).
        test: String,
        /// The target fault list (required unless `--faults af`).
        list: Option<CoverageTarget>,
        /// The fault domain: cell-array FFMs, address-decoder faults, or both.
        faults: FaultDomain,
        /// Memory size in cells (`None` = the scope default).
        cells: Option<usize>,
        /// Use exhaustive cell placements.
        exhaustive: bool,
        /// Monte-Carlo draw count: `Some(n)` runs a seeded campaign over the
        /// exhaustive `(placement, background)` space instead of enumerating
        /// it. `None` (no `--sample`) keeps the enumeration path.
        sample: Option<u64>,
        /// Campaign PRNG seed; identical seeds replay identical draws.
        seed: u64,
        /// Confidence level of the campaign's Wilson-score interval,
        /// strictly inside `(0, 1)`.
        confidence: f64,
        /// Which simulation backend evaluates the coverage lanes (defaults to
        /// the packed engine; `--backend scalar` opts out).
        backend: BackendKind,
        /// Worker threads the fault targets fan out over (0 = auto).
        threads: usize,
        /// Coverage lanes per packed word (auto = narrowest fitting width).
        lane_width: LaneWidth,
        /// Emit the machine-readable `Report` JSON instead of the text form.
        json: bool,
    },
    /// `minimise --test <name> --list <1|2|unlinked>
    /// [--backend scalar|packed] [--threads N] [--lane-width auto|64|128|256]
    /// [--json]`.
    ///
    /// Runs the suffix-only redundancy-removal pass on a catalogue march test:
    /// every operation whose removal keeps the fault list fully covered is
    /// deleted, re-verifying only the suffix after each edit from per-element
    /// simulation snapshots.
    Minimise {
        /// Catalogue name of the march test to shorten.
        test: String,
        /// The fault list whose coverage must be preserved (required unless
        /// `--faults af`).
        list: Option<CoverageTarget>,
        /// The fault domain: cell-array FFMs, address-decoder faults, or both.
        faults: FaultDomain,
        /// Memory size in cells (`None` = the scope default).
        cells: Option<usize>,
        /// Which simulation backend re-verifies the removal trials.
        backend: BackendKind,
        /// Worker threads the `(target × suffix)` trials shard over (0 = auto).
        threads: usize,
        /// Coverage lanes per packed word (auto = narrowest fitting width).
        lane_width: LaneWidth,
        /// Emit the machine-readable `Report` JSON instead of the text form.
        json: bool,
    },
    /// `diagnose --test <name> --fault <notation> --victim <cell> --list <1|2|unlinked>
    /// [--aggressor <cell>] [--cells <n>] [--backend scalar|packed] [--threads N] [--json]`.
    ///
    /// Simulates a device carrying the given fault, observes its failure
    /// syndrome under the march test, then sweeps the fault list for every
    /// candidate instance whose simulated syndrome matches.
    Diagnose {
        /// Catalogue name of the march test the syndrome is observed under.
        test: String,
        /// The `<S/F/R>` notation of the fault primitive injected into the
        /// simulated device.
        fault: String,
        /// The victim cell address.
        victim: usize,
        /// The aggressor cell address, for coupling primitives.
        aggressor: Option<usize>,
        /// Memory size in cells.
        cells: usize,
        /// The fault space searched for matching candidates.
        list: CoverageTarget,
        /// Which simulation backend the session uses.
        backend: BackendKind,
        /// Worker threads of the session (0 = auto).
        threads: usize,
        /// Coverage lanes per packed word (auto = narrowest fitting width).
        lane_width: LaneWidth,
        /// Emit the machine-readable `Report` JSON instead of the text form.
        json: bool,
    },
    /// `simulate --test <name> --fault <notation> --victim <cell> [--aggressor <cell>]
    /// [--cells <n>]`.
    Simulate {
        /// Catalogue name of the march test to run.
        test: String,
        /// The `<S/F/R>` notation of the fault primitive to inject.
        fault: String,
        /// The victim cell address.
        victim: usize,
        /// The aggressor cell address, for coupling primitives.
        aggressor: Option<usize>,
        /// Memory size in cells.
        cells: usize,
    },
    /// `serve [--backend scalar|packed] [--threads N] [--lane-width auto|64|128|256]
    /// [--max-in-flight N] [--timeout-ms N] [--read-timeout-ms N]
    /// [--snapshot-dir DIR] [--tcp ADDR]`.
    ///
    /// Runs the resident service loop: newline-delimited JSON requests
    /// (coverage / generate / minimise / diagnose / stats / shutdown) from
    /// stdin — or from every client of a TCP listener under `--tcp` —
    /// multiplexed over one shared engine whose artifact store and worker
    /// pool stay warm across requests and clients.
    Serve {
        /// Which simulation backend the shared engine uses.
        backend: BackendKind,
        /// Worker threads of the resident pool (0 = auto; the default, since
        /// a server wants every core).
        threads: usize,
        /// Coverage lanes per packed word (auto = narrowest fitting width).
        lane_width: LaneWidth,
        /// Maximum concurrently executing requests; further requests apply
        /// backpressure to the client.
        max_in_flight: usize,
        /// Per-request deadline in milliseconds before a typed `timeout`
        /// error is answered in its slot.
        timeout_ms: u64,
        /// Per-connection idle read timeout in milliseconds; an idle TCP
        /// client is answered with a typed `timeout` error and closed.
        /// `None` waits indefinitely.
        read_timeout_ms: Option<u64>,
        /// Crash-safe snapshot directory: cached target-lane enumerations and
        /// fault dictionaries persist here across restarts. `None` keeps the
        /// cache memory-only.
        snapshot_dir: Option<String>,
        /// TCP listen address (e.g. `127.0.0.1:7777`; port 0 picks a free
        /// one). Stdin/stdout when absent.
        tcp: Option<String>,
    },
    /// `snapshot --dir DIR [--warm --list <1|2|unlinked> [--faults ffm|af|all]
    /// [--test <name>] [--cells N]]`.
    ///
    /// Inspects a snapshot directory (file names, sizes, kinds and
    /// integrity), and with `--warm` pre-populates it: enumerates the target
    /// lanes of the selected fault list (and, with `--test`, builds that
    /// test's fault dictionary) so a later `serve --snapshot-dir DIR` starts
    /// warm.
    Snapshot {
        /// The snapshot directory to inspect or pre-warm.
        dir: String,
        /// Pre-populate the directory instead of only inspecting it.
        warm: bool,
        /// The fault list to warm (required with `--warm` unless
        /// `--faults af`).
        list: Option<CoverageTarget>,
        /// The fault domain of the warmed list.
        faults: FaultDomain,
        /// Also build and persist this march test's fault dictionary.
        test: Option<String>,
        /// Memory size in cells for the warmed artifacts (`None` = the scope
        /// default).
        cells: Option<usize>,
    },
    /// `help` — print the usage text.
    Help,
}

impl Command {
    /// Parses the arguments following the program name.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] describing the first offending argument.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Command, ParseArgsError> {
        let mut args = args.peekable();
        let Some(subcommand) = args.next() else {
            return Ok(Command::Help);
        };
        match subcommand.as_str() {
            "help" | "--help" | "-h" => Ok(Command::Help),
            "catalog" => Ok(Command::Catalog),
            "show" => {
                let name: Vec<String> = args.collect();
                if name.is_empty() {
                    return Err(ParseArgsError("show requires a march test name".into()));
                }
                Ok(Command::Show {
                    name: name.join(" "),
                })
            }
            "generate" => {
                let mut list = None;
                let mut faults = FaultDomain::Ffm;
                let mut cells = None;
                let mut no_removal = false;
                let mut order = None;
                let mut name = None;
                let mut exhaustive = false;
                let mut backend = BackendKind::Packed;
                let mut threads = None;
                let mut batch = 0usize;
                let mut lane_width = LaneWidth::Auto;
                let mut json = false;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--list" => {
                            list = Some(CoverageTarget::parse(&required(&mut args, "--list")?)?)
                        }
                        "--faults" => {
                            faults = FaultDomain::parse(&required(&mut args, "--faults")?)?
                        }
                        "--cells" => cells = Some(parse_number(&required(&mut args, "--cells")?)?),
                        "--no-removal" => no_removal = true,
                        "--exhaustive" => exhaustive = true,
                        "--order" => {
                            let value = required(&mut args, "--order")?;
                            order = Some(value.parse::<AddressOrder>().map_err(|_| {
                                ParseArgsError(format!("unknown address order `{value}`"))
                            })?);
                        }
                        "--name" => name = Some(required(&mut args, "--name")?),
                        "--backend" => backend = parse_backend(&required(&mut args, "--backend")?)?,
                        "--threads" => {
                            threads = Some(parse_threads(&required(&mut args, "--threads")?)?);
                        }
                        "--batch" => batch = parse_batch(&required(&mut args, "--batch")?)?,
                        "--lane-width" => {
                            lane_width = parse_lane_width(&required(&mut args, "--lane-width")?)?;
                        }
                        "--json" => json = true,
                        other => return Err(unknown_flag(other)),
                    }
                }
                require_list(list, faults, "generate")?;
                Ok(Command::Generate {
                    list,
                    faults,
                    cells,
                    no_removal,
                    order,
                    name,
                    exhaustive,
                    backend,
                    threads: resolve_threads(threads, cells),
                    batch,
                    lane_width,
                    json,
                })
            }
            "coverage" => {
                let mut test = None;
                let mut list = None;
                let mut faults = FaultDomain::Ffm;
                let mut cells = None;
                let mut exhaustive = false;
                let mut sample = None;
                let mut seed = None;
                let mut confidence = None;
                let mut backend = BackendKind::Packed;
                let mut threads = None;
                let mut lane_width = LaneWidth::Auto;
                let mut json = false;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--test" => test = Some(required(&mut args, "--test")?),
                        "--list" => {
                            list = Some(CoverageTarget::parse(&required(&mut args, "--list")?)?)
                        }
                        "--faults" => {
                            faults = FaultDomain::parse(&required(&mut args, "--faults")?)?
                        }
                        "--cells" => cells = Some(parse_number(&required(&mut args, "--cells")?)?),
                        "--exhaustive" => exhaustive = true,
                        "--sample" => {
                            sample = Some(parse_sample(&required(&mut args, "--sample")?)?)
                        }
                        "--seed" => seed = Some(parse_seed(&required(&mut args, "--seed")?)?),
                        "--confidence" => {
                            confidence =
                                Some(parse_confidence(&required(&mut args, "--confidence")?)?);
                        }
                        "--backend" => backend = parse_backend(&required(&mut args, "--backend")?)?,
                        "--threads" => {
                            threads = Some(parse_threads(&required(&mut args, "--threads")?)?);
                        }
                        "--lane-width" => {
                            lane_width = parse_lane_width(&required(&mut args, "--lane-width")?)?;
                        }
                        "--json" => json = true,
                        other => return Err(unknown_flag(other)),
                    }
                }
                require_list(list, faults, "coverage")?;
                if sample.is_some() && exhaustive {
                    return Err(ParseArgsError(
                        "--sample draws from the exhaustive space at random; combining it \
                         with --exhaustive is ambiguous — pick one"
                            .into(),
                    ));
                }
                if sample.is_none() {
                    if seed.is_some() {
                        return Err(ParseArgsError(
                            "--seed only applies to Monte-Carlo campaigns; add --sample N".into(),
                        ));
                    }
                    if confidence.is_some() {
                        return Err(ParseArgsError(
                            "--confidence only applies to Monte-Carlo campaigns; add --sample N"
                                .into(),
                        ));
                    }
                }
                Ok(Command::Coverage {
                    // March SS is the canonical thorough catalogue test; it is
                    // the default so `coverage --faults af --cells 1024` works
                    // out of the box.
                    test: test.unwrap_or_else(|| "March SS".to_string()),
                    list,
                    faults,
                    cells,
                    exhaustive,
                    sample,
                    seed: seed.unwrap_or(0),
                    confidence: confidence.unwrap_or(0.95),
                    backend,
                    threads: resolve_threads(threads, cells),
                    lane_width,
                    json,
                })
            }
            "minimise" | "minimize" => {
                let mut test = None;
                let mut list = None;
                let mut faults = FaultDomain::Ffm;
                let mut cells = None;
                let mut backend = BackendKind::Packed;
                let mut threads = None;
                let mut lane_width = LaneWidth::Auto;
                let mut json = false;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--test" => test = Some(required(&mut args, "--test")?),
                        "--list" => {
                            list = Some(CoverageTarget::parse(&required(&mut args, "--list")?)?)
                        }
                        "--faults" => {
                            faults = FaultDomain::parse(&required(&mut args, "--faults")?)?
                        }
                        "--cells" => cells = Some(parse_number(&required(&mut args, "--cells")?)?),
                        "--backend" => backend = parse_backend(&required(&mut args, "--backend")?)?,
                        "--threads" => {
                            threads = Some(parse_threads(&required(&mut args, "--threads")?)?);
                        }
                        "--lane-width" => {
                            lane_width = parse_lane_width(&required(&mut args, "--lane-width")?)?;
                        }
                        "--json" => json = true,
                        other => return Err(unknown_flag(other)),
                    }
                }
                require_list(list, faults, "minimise")?;
                Ok(Command::Minimise {
                    test: test.ok_or_else(|| ParseArgsError("minimise requires --test".into()))?,
                    list,
                    faults,
                    cells,
                    backend,
                    threads: resolve_threads(threads, cells),
                    lane_width,
                    json,
                })
            }
            "diagnose" => {
                let mut test = None;
                let mut fault = None;
                let mut victim = None;
                let mut aggressor = None;
                let mut cells = 8usize;
                let mut list = None;
                let mut backend = BackendKind::Packed;
                let mut threads = None;
                let mut lane_width = LaneWidth::Auto;
                let mut json = false;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--test" => test = Some(required(&mut args, "--test")?),
                        "--fault" => fault = Some(required(&mut args, "--fault")?),
                        "--victim" => {
                            victim = Some(parse_number(&required(&mut args, "--victim")?)?)
                        }
                        "--aggressor" => {
                            aggressor = Some(parse_number(&required(&mut args, "--aggressor")?)?);
                        }
                        "--cells" => cells = parse_number(&required(&mut args, "--cells")?)?,
                        "--list" => {
                            list = Some(CoverageTarget::parse(&required(&mut args, "--list")?)?)
                        }
                        "--backend" => backend = parse_backend(&required(&mut args, "--backend")?)?,
                        "--threads" => {
                            threads = Some(parse_threads(&required(&mut args, "--threads")?)?);
                        }
                        "--lane-width" => {
                            lane_width = parse_lane_width(&required(&mut args, "--lane-width")?)?;
                        }
                        "--json" => json = true,
                        other => return Err(unknown_flag(other)),
                    }
                }
                Ok(Command::Diagnose {
                    test: test.ok_or_else(|| ParseArgsError("diagnose requires --test".into()))?,
                    fault: fault
                        .ok_or_else(|| ParseArgsError("diagnose requires --fault".into()))?,
                    victim: victim
                        .ok_or_else(|| ParseArgsError("diagnose requires --victim".into()))?,
                    aggressor,
                    cells,
                    list: list.ok_or_else(|| ParseArgsError("diagnose requires --list".into()))?,
                    backend,
                    threads: resolve_threads(threads, Some(cells)),
                    lane_width,
                    json,
                })
            }
            "simulate" => {
                let mut test = None;
                let mut fault = None;
                let mut victim = None;
                let mut aggressor = None;
                let mut cells = 8usize;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--test" => test = Some(required(&mut args, "--test")?),
                        "--fault" => fault = Some(required(&mut args, "--fault")?),
                        "--victim" => {
                            victim = Some(parse_number(&required(&mut args, "--victim")?)?)
                        }
                        "--aggressor" => {
                            aggressor = Some(parse_number(&required(&mut args, "--aggressor")?)?);
                        }
                        "--cells" => cells = parse_number(&required(&mut args, "--cells")?)?,
                        other => return Err(unknown_flag(other)),
                    }
                }
                Ok(Command::Simulate {
                    test: test.ok_or_else(|| ParseArgsError("simulate requires --test".into()))?,
                    fault: fault
                        .ok_or_else(|| ParseArgsError("simulate requires --fault".into()))?,
                    victim: victim
                        .ok_or_else(|| ParseArgsError("simulate requires --victim".into()))?,
                    aggressor,
                    cells,
                })
            }
            "serve" => {
                let mut backend = BackendKind::Packed;
                let mut threads = None;
                let mut lane_width = LaneWidth::Auto;
                let mut max_in_flight = 4usize;
                let mut timeout_ms = 30_000u64;
                let mut read_timeout_ms = None;
                let mut snapshot_dir = None;
                let mut tcp = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--backend" => backend = parse_backend(&required(&mut args, "--backend")?)?,
                        "--threads" => {
                            threads = Some(parse_threads(&required(&mut args, "--threads")?)?);
                        }
                        "--lane-width" => {
                            lane_width = parse_lane_width(&required(&mut args, "--lane-width")?)?;
                        }
                        "--max-in-flight" => {
                            let value = required(&mut args, "--max-in-flight")?;
                            max_in_flight = value.parse::<usize>().ok().filter(|n| *n > 0).ok_or_else(|| {
                                ParseArgsError(format!(
                                    "`{value}` is not a valid in-flight limit (need a positive integer)"
                                ))
                            })?;
                        }
                        "--timeout-ms" => {
                            let value = required(&mut args, "--timeout-ms")?;
                            timeout_ms = value.parse::<u64>().map_err(|_| {
                                ParseArgsError(format!(
                                    "`{value}` is not a valid timeout in milliseconds"
                                ))
                            })?;
                        }
                        "--read-timeout-ms" => {
                            let value = required(&mut args, "--read-timeout-ms")?;
                            read_timeout_ms =
                                Some(value.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(
                                    || {
                                        ParseArgsError(format!(
                                            "`{value}` is not a valid read timeout in milliseconds \
                                             (need a positive integer)"
                                        ))
                                    },
                                )?);
                        }
                        "--snapshot-dir" => {
                            snapshot_dir = Some(required(&mut args, "--snapshot-dir")?);
                        }
                        "--tcp" => tcp = Some(required(&mut args, "--tcp")?),
                        other => return Err(unknown_flag(other)),
                    }
                }
                Ok(Command::Serve {
                    backend,
                    // A resident service defaults to every core, unlike the
                    // serial one-shot commands.
                    threads: threads.unwrap_or(0),
                    lane_width,
                    max_in_flight,
                    timeout_ms,
                    read_timeout_ms,
                    snapshot_dir,
                    tcp,
                })
            }
            "snapshot" => {
                let mut dir = None;
                let mut warm = false;
                let mut list = None;
                let mut faults = FaultDomain::Ffm;
                let mut test = None;
                let mut cells = None;
                while let Some(arg) = args.next() {
                    match arg.as_str() {
                        "--dir" => dir = Some(required(&mut args, "--dir")?),
                        "--warm" => warm = true,
                        "--list" => {
                            list = Some(CoverageTarget::parse(&required(&mut args, "--list")?)?)
                        }
                        "--faults" => {
                            faults = FaultDomain::parse(&required(&mut args, "--faults")?)?
                        }
                        "--test" => test = Some(required(&mut args, "--test")?),
                        "--cells" => cells = Some(parse_number(&required(&mut args, "--cells")?)?),
                        other => return Err(unknown_flag(other)),
                    }
                }
                if warm {
                    require_list(list, faults, "snapshot --warm")?;
                } else if list.is_some() || test.is_some() || cells.is_some() {
                    return Err(ParseArgsError(
                        "snapshot only uses --list/--test/--cells together with --warm".into(),
                    ));
                }
                Ok(Command::Snapshot {
                    dir: dir.ok_or_else(|| ParseArgsError("snapshot requires --dir".into()))?,
                    warm,
                    list,
                    faults,
                    test,
                    cells,
                })
            }
            other => Err(ParseArgsError(format!(
                "unknown sub-command `{other}` (try `march-codex help`)"
            ))),
        }
    }
}

fn required(
    args: &mut std::iter::Peekable<impl Iterator<Item = String>>,
    flag: &str,
) -> Result<String, ParseArgsError> {
    args.next()
        .ok_or_else(|| ParseArgsError(format!("{flag} requires a value")))
}

/// `--list` is mandatory unless the fault domain is decoder-only — and
/// conversely the decoder-only domain rejects an explicit `--list`, so a
/// cell-array list can never be silently dropped from the run.
pub(crate) fn require_list(
    list: Option<CoverageTarget>,
    faults: FaultDomain,
    command: &str,
) -> Result<(), ParseArgsError> {
    match faults {
        FaultDomain::Af if list.is_some() => Err(ParseArgsError(format!(
            "{command} --faults af targets only the decoder classes and would ignore \
             --list; drop --list or use --faults all to combine the two domains"
        ))),
        FaultDomain::Ffm | FaultDomain::All if list.is_none() => Err(ParseArgsError(format!(
            "{command} requires --list (or --faults af for the decoder-only domain)"
        ))),
        _ => Ok(()),
    }
}

/// Resolves the worker-thread count: an explicit `--threads` wins; otherwise
/// memories beyond 64 cells (one packed lane word) default to the available
/// parallelism — the packed + threaded path is the only viable one there —
/// and small memories stay serial, as before.
fn resolve_threads(threads: Option<usize>, cells: Option<usize>) -> usize {
    match (threads, cells) {
        (Some(threads), _) => threads,
        (None, Some(cells)) if cells > 64 => 0,
        (None, _) => 1,
    }
}

fn parse_number(text: &str) -> Result<usize, ParseArgsError> {
    text.parse::<usize>()
        .map_err(|_| ParseArgsError(format!("`{text}` is not a valid cell count/address")))
}

/// Parses a campaign draw count. Scientific notation is accepted
/// (`--sample 1e6`), but the value must be a finite positive integer no
/// larger than 2^53 — the largest f64-exact integer — so a notation like
/// `1e999` (infinite) or `2.5e3.1` can never silently truncate through an
/// `as` cast.
fn parse_sample(text: &str) -> Result<u64, ParseArgsError> {
    const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    let value = text.trim().parse::<f64>().map_err(|_| {
        ParseArgsError(format!(
            "`{text}` is not a valid sample count (e.g. 100000 or 1e6)"
        ))
    })?;
    if !value.is_finite() || value < 1.0 || value.fract() != 0.0 || value > MAX_EXACT {
        return Err(ParseArgsError(format!(
            "`{text}` is not a valid sample count (a positive integer up to 2^53; \
             scientific notation like 1e6 is fine)"
        )));
    }
    // lint: allow(cast) — guarded above: finite, integral, within 2^53.
    Ok(value as u64)
}

fn parse_seed(text: &str) -> Result<u64, ParseArgsError> {
    text.trim()
        .parse::<u64>()
        .map_err(|_| ParseArgsError(format!("`{text}` is not a valid campaign seed (a u64)")))
}

fn parse_confidence(text: &str) -> Result<f64, ParseArgsError> {
    let value = text
        .trim()
        .parse::<f64>()
        .map_err(|_| ParseArgsError(format!("`{text}` is not a valid confidence level")))?;
    if !value.is_finite() || value <= 0.0 || value >= 1.0 {
        return Err(ParseArgsError(format!(
            "confidence levels are strictly between 0 and 1 (e.g. 0.95), got `{text}`"
        )));
    }
    Ok(value)
}

fn parse_backend(text: &str) -> Result<BackendKind, ParseArgsError> {
    text.parse::<BackendKind>()
        .map_err(|error| ParseArgsError(error.to_string()))
}

fn parse_threads(text: &str) -> Result<usize, ParseArgsError> {
    text.parse::<usize>().map_err(|_| {
        ParseArgsError(format!(
            "`{text}` is not a valid thread count (use 0 for auto)"
        ))
    })
}

fn parse_lane_width(text: &str) -> Result<LaneWidth, ParseArgsError> {
    text.parse::<LaneWidth>()
        .map_err(|error| ParseArgsError(error.to_string()))
}

fn parse_batch(text: &str) -> Result<usize, ParseArgsError> {
    let batch = text.parse::<usize>().map_err(|_| {
        ParseArgsError(format!(
            "`{text}` is not a valid batch size (use 0 for full words)"
        ))
    })?;
    if batch > 64 {
        return Err(ParseArgsError(format!(
            "batch sizes pack at most 64 candidates per word, got {batch}"
        )));
    }
    Ok(batch)
}

fn unknown_flag(flag: &str) -> ParseArgsError {
    ParseArgsError(format!("unknown flag `{flag}`"))
}

/// The usage text printed by `march-codex help`.
#[must_use]
pub fn usage() -> String {
    // lint: allow(json) — help text showing an example serve request line;
    // not report output.
    "march-codex — automatic march test generation for static linked faults in SRAMs\n\
     \n\
     USAGE:\n\
     \x20 march-codex catalog\n\
     \x20 march-codex show <name>\n\
     \x20 march-codex generate [--list <1|2>] [--faults ffm|af|all] [--cells N] [--no-removal]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--order up|down] [--name NAME] [--exhaustive]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--backend scalar|packed] [--threads N] [--batch N]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--lane-width auto|64|128|256] [--json]\n\
     \x20 march-codex coverage [--test <name>] [--list <1|2|unlinked>] [--faults ffm|af|all]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--cells N] [--exhaustive] [--sample N [--seed S] [--confidence C]]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--backend scalar|packed] [--threads N]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--lane-width auto|64|128|256] [--json]\n\
     \x20 march-codex minimise --test <name> [--list <1|2|unlinked>] [--faults ffm|af|all]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--cells N] [--backend scalar|packed] [--threads N]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--lane-width auto|64|128|256] [--json]\n\
     \x20 march-codex diagnose --test <name> --fault <notation> --victim <cell> --list <1|2|unlinked>\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--aggressor <cell>] [--cells <n>] [--backend scalar|packed] [--threads N]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--lane-width auto|64|128|256] [--json]\n\
     \x20 march-codex simulate --test <name> --fault <notation> --victim <cell> [--aggressor <cell>] [--cells <n>]\n\
     \x20 march-codex serve [--backend scalar|packed] [--threads N] [--lane-width auto|64|128|256]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--max-in-flight N] [--timeout-ms N] [--read-timeout-ms N]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--snapshot-dir DIR] [--tcp ADDR]\n\
     \x20 march-codex snapshot --dir DIR [--warm --list <1|2|unlinked> [--faults ffm|af|all]\n\
     \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20 \x20[--test <name>] [--cells N]]\n\
     \x20 march-codex help\n\
     \n\
     Every invocation builds one sram_sim::Session from the --backend/--threads/\n\
     --batch/--lane-width execution policy; --json emits the session report's\n\
     machine-readable form.\n\
     --faults selects the fault domain: ffm (the cell-array --list, the default), af\n\
     (the four address-decoder classes; --list must be omitted) or all (--list plus\n\
     the decoder classes). --cells sets the simulated memory size; above 64 cells\n\
     --threads defaults to the available parallelism (the packed + threaded\n\
     large-memory path). --lane-width packs 64, 128 or 256 coverage lanes into one\n\
     simulation pass of the packed backend (auto, the default, picks the narrowest\n\
     width holding each target's lanes — e.g. `coverage --faults af --cells 1024\n\
     --lane-width 256` quarters the sensitization passes of the exhaustive decoder\n\
     sweep). Reports are byte-identical at every width. coverage --test defaults\n\
     to March SS.\n\
     coverage --sample N replaces enumeration with a seeded Monte-Carlo campaign\n\
     over the exhaustive (placement, background) space: N draws (1e6 notation is\n\
     accepted), a Wilson-score confidence interval at --confidence (default 0.95),\n\
     and a bounded escape trace. Identical --seed values replay identical draws on\n\
     every backend, thread count and lane width; draw counts covering the whole\n\
     space degenerate to sampling without replacement and match --exhaustive\n\
     verdicts exactly.\n\
     serve keeps one engine resident and answers newline-delimited JSON requests\n\
     ({\"op\": \"coverage\"|\"generate\"|\"minimise\"|\"diagnose\"|\"stats\"|\"shutdown\", ...}) on\n\
     stdin or a --tcp socket; all clients share its artifact store and worker pool,\n\
     at most --max-in-flight requests execute concurrently (excess requests see\n\
     backpressure), and requests beyond --timeout-ms answer a typed timeout error.\n\
     --snapshot-dir persists the cache crash-safely across restarts (checksummed,\n\
     written atomically; corrupt files are quarantined and rebuilt in memory);\n\
     --read-timeout-ms bounds idle connections; a shutdown request drains the\n\
     service gracefully. snapshot inspects such a directory, or pre-warms it with\n\
     --warm so the next serve starts hot.\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseArgsError> {
        Command::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_catalog_show_and_help() {
        assert_eq!(parse(&["catalog"]).unwrap(), Command::Catalog);
        assert_eq!(
            parse(&["show", "March", "SL"]).unwrap(),
            Command::Show {
                name: "March SL".into()
            }
        );
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(parse(&["show"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
    }

    #[test]
    fn parses_generate() {
        let command = parse(&[
            "generate",
            "--list",
            "1",
            "--no-removal",
            "--order",
            "up",
            "--name",
            "March X",
        ])
        .unwrap();
        assert_eq!(
            command,
            Command::Generate {
                list: Some(CoverageTarget::List1),
                faults: FaultDomain::Ffm,
                cells: None,
                no_removal: true,
                order: Some(AddressOrder::Ascending),
                name: Some("March X".into()),
                exhaustive: false,
                backend: BackendKind::Packed,
                threads: 1,
                batch: 0,
                lane_width: LaneWidth::Auto,
                json: false,
            }
        );
        assert!(parse(&["generate"]).is_err());
        assert!(parse(&["generate", "--list", "7"]).is_err());
        assert!(parse(&["generate", "--list", "1", "--order", "sideways"]).is_err());
    }

    #[test]
    fn parses_minimise() {
        let command = parse(&[
            "minimise",
            "--test",
            "March SL",
            "--list",
            "2",
            "--threads",
            "0",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            command,
            Command::Minimise {
                test: "March SL".into(),
                list: Some(CoverageTarget::List2),
                faults: FaultDomain::Ffm,
                cells: None,
                backend: BackendKind::Packed,
                threads: 0,
                lane_width: LaneWidth::Auto,
                json: true,
            }
        );
        // The American spelling is accepted too.
        assert_eq!(
            parse(&["minimize", "--test", "MATS+", "--list", "unlinked"]).unwrap(),
            Command::Minimise {
                test: "MATS+".into(),
                list: Some(CoverageTarget::Unlinked),
                faults: FaultDomain::Ffm,
                cells: None,
                backend: BackendKind::Packed,
                threads: 1,
                lane_width: LaneWidth::Auto,
                json: false,
            }
        );
        assert!(parse(&["minimise", "--test", "March SL"]).is_err());
        assert!(parse(&["minimise", "--list", "2"]).is_err());
        assert!(parse(&["minimise", "--test", "x", "--list", "2", "--bogus"]).is_err());
    }

    #[test]
    fn parses_backend_threads_and_batch() {
        let command = parse(&[
            "generate",
            "--list",
            "2",
            "--backend",
            "scalar",
            "--threads",
            "4",
            "--batch",
            "16",
        ])
        .unwrap();
        assert!(matches!(
            command,
            Command::Generate {
                backend: BackendKind::Scalar,
                threads: 4,
                batch: 16,
                ..
            }
        ));
        assert!(parse(&["generate", "--list", "2", "--batch", "65"]).is_err());
        assert!(parse(&["generate", "--list", "2", "--batch", "lots"]).is_err());
        let coverage = parse(&[
            "coverage",
            "--test",
            "March SL",
            "--list",
            "1",
            "--backend",
            "packed",
            "--threads",
            "0",
        ])
        .unwrap();
        assert!(matches!(
            coverage,
            Command::Coverage {
                backend: BackendKind::Packed,
                threads: 0,
                ..
            }
        ));
        assert!(parse(&[
            "coverage",
            "--test",
            "x",
            "--list",
            "1",
            "--backend",
            "simd"
        ])
        .is_err());
        assert!(parse(&["generate", "--list", "2", "--threads", "many"]).is_err());
    }

    #[test]
    fn parses_coverage_and_simulate() {
        let coverage = parse(&[
            "coverage",
            "--test",
            "March SL",
            "--list",
            "unlinked",
            "--exhaustive",
        ])
        .unwrap();
        assert_eq!(
            coverage,
            Command::Coverage {
                test: "March SL".into(),
                list: Some(CoverageTarget::Unlinked),
                faults: FaultDomain::Ffm,
                cells: None,
                exhaustive: true,
                sample: None,
                seed: 0,
                confidence: 0.95,
                backend: BackendKind::Packed,
                threads: 1,
                lane_width: LaneWidth::Auto,
                json: false,
            }
        );
        let simulate = parse(&[
            "simulate",
            "--test",
            "March SS",
            "--fault",
            "<0w1;0/1/->",
            "--victim",
            "5",
            "--aggressor",
            "2",
            "--cells",
            "16",
        ])
        .unwrap();
        assert_eq!(
            simulate,
            Command::Simulate {
                test: "March SS".into(),
                fault: "<0w1;0/1/->".into(),
                victim: 5,
                aggressor: Some(2),
                cells: 16,
            }
        );
        assert!(parse(&["simulate", "--test", "March SS"]).is_err());
        // coverage without --list still errors in the default ffm domain...
        assert!(parse(&["coverage", "--test", "March SS"]).is_err());
        // ...and without --test defaults to March SS in the af domain.
        assert!(matches!(
            parse(&["coverage", "--faults", "af"]).unwrap(),
            Command::Coverage { test, .. } if test == "March SS"
        ));
        assert!(parse(&["simulate", "--test", "x", "--fault", "y", "--victim", "abc"]).is_err());
    }

    #[test]
    fn parses_diagnose_and_json_flags() {
        let diagnose = parse(&[
            "diagnose",
            "--test",
            "March SS",
            "--fault",
            "<0w1;0/1/->",
            "--victim",
            "4",
            "--aggressor",
            "1",
            "--list",
            "unlinked",
            "--cells",
            "6",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            diagnose,
            Command::Diagnose {
                test: "March SS".into(),
                fault: "<0w1;0/1/->".into(),
                victim: 4,
                aggressor: Some(1),
                cells: 6,
                list: CoverageTarget::Unlinked,
                backend: BackendKind::Packed,
                threads: 1,
                lane_width: LaneWidth::Auto,
                json: true,
            }
        );
        assert!(parse(&["diagnose", "--test", "March SS"]).is_err());
        assert!(parse(&["diagnose", "--fault", "x", "--victim", "1", "--list", "2"]).is_err());
        assert!(matches!(
            parse(&["coverage", "--test", "x", "--list", "1", "--json"]).unwrap(),
            Command::Coverage { json: true, .. }
        ));
        assert!(matches!(
            parse(&["generate", "--list", "2", "--json"]).unwrap(),
            Command::Generate { json: true, .. }
        ));
    }

    #[test]
    fn parses_faults_and_cells() {
        // Decoder-only domain: --list becomes optional and large memories
        // default to auto threads.
        let af = parse(&[
            "coverage", "--test", "March SS", "--faults", "af", "--cells", "1024",
        ])
        .unwrap();
        assert_eq!(
            af,
            Command::Coverage {
                test: "March SS".into(),
                list: None,
                faults: FaultDomain::Af,
                cells: Some(1024),
                exhaustive: false,
                sample: None,
                seed: 0,
                confidence: 0.95,
                backend: BackendKind::Packed,
                threads: 0,
                lane_width: LaneWidth::Auto,
                json: false,
            }
        );
        // Small memories stay serial by default; explicit --threads always wins.
        assert!(matches!(
            parse(&["coverage", "--test", "x", "--faults", "af", "--cells", "64"]).unwrap(),
            Command::Coverage { threads: 1, .. }
        ));
        assert!(matches!(
            parse(&[
                "coverage",
                "--test",
                "x",
                "--faults",
                "af",
                "--cells",
                "1024",
                "--threads",
                "2"
            ])
            .unwrap(),
            Command::Coverage { threads: 2, .. }
        ));
        // The combined domain still needs a cell-array list...
        assert!(parse(&["coverage", "--test", "x", "--faults", "all"]).is_err());
        // ...and the decoder-only domain rejects one rather than dropping it.
        assert!(parse(&["coverage", "--test", "x", "--list", "2", "--faults", "af"]).is_err());
        assert!(parse(&["generate", "--list", "1", "--faults", "af"]).is_err());
        assert!(matches!(
            parse(&["generate", "--list", "2", "--faults", "all", "--cells", "16"]).unwrap(),
            Command::Generate {
                faults: FaultDomain::All,
                cells: Some(16),
                ..
            }
        ));
        assert!(matches!(
            parse(&["minimise", "--test", "March SS", "--faults", "af"]).unwrap(),
            Command::Minimise {
                list: None,
                faults: FaultDomain::Af,
                ..
            }
        ));
        assert!(parse(&["coverage", "--test", "x", "--faults", "bogus"]).is_err());
        assert!(parse(&["coverage", "--test", "x", "--list", "2", "--cells", "many"]).is_err());
    }

    #[test]
    fn parses_campaign_flags() {
        // Full campaign spelling, with scientific notation for the draws.
        assert!(matches!(
            parse(&[
                "coverage",
                "--faults",
                "af",
                "--cells",
                "1024",
                "--sample",
                "1e6",
                "--seed",
                "7",
                "--confidence",
                "0.99",
            ])
            .unwrap(),
            Command::Coverage {
                sample: Some(1_000_000),
                seed: 7,
                confidence,
                ..
            } if (confidence - 0.99).abs() < 1e-12
        ));
        // Defaults: seed 0, confidence 0.95.
        assert!(matches!(
            parse(&["coverage", "--list", "1", "--sample", "4096"]).unwrap(),
            Command::Coverage {
                sample: Some(4096),
                seed: 0,
                confidence,
                ..
            } if (confidence - 0.95).abs() < 1e-12
        ));
        // --seed / --confidence are campaign-only knobs.
        assert!(parse(&["coverage", "--list", "1", "--seed", "7"]).is_err());
        assert!(parse(&["coverage", "--list", "1", "--confidence", "0.9"]).is_err());
        // --sample and --exhaustive are mutually exclusive.
        assert!(parse(&["coverage", "--list", "1", "--sample", "10", "--exhaustive"]).is_err());
        // Degenerate numerics are typed errors, never silent truncation:
        // infinite notation, fractional counts, zero/negative, and overflow
        // past 2^53 all reject.
        for bad in ["1e999", "2.5", "0", "-3", "1e300", "nan", "inf", "lots"] {
            assert!(
                parse(&["coverage", "--list", "1", "--sample", bad]).is_err(),
                "--sample {bad} should be rejected"
            );
        }
        for bad in ["0", "1", "1.5", "-0.5", "nan", "inf", "many"] {
            assert!(
                parse(&[
                    "coverage",
                    "--list",
                    "1",
                    "--sample",
                    "10",
                    "--confidence",
                    bad
                ])
                .is_err(),
                "--confidence {bad} should be rejected"
            );
        }
        assert!(parse(&["coverage", "--list", "1", "--sample", "10", "--seed", "-1"]).is_err());
        assert!(parse(&["coverage", "--list", "1", "--sample", "10", "--seed", "1e3"]).is_err());
    }

    #[test]
    fn parses_lane_width() {
        // Explicit widths reach every session-building sub-command.
        assert!(matches!(
            parse(&[
                "coverage",
                "--test",
                "x",
                "--list",
                "1",
                "--lane-width",
                "256"
            ])
            .unwrap(),
            Command::Coverage {
                lane_width: LaneWidth::W256,
                ..
            }
        ));
        assert!(matches!(
            parse(&["generate", "--list", "2", "--lane-width", "128"]).unwrap(),
            Command::Generate {
                lane_width: LaneWidth::W128,
                ..
            }
        ));
        assert!(matches!(
            parse(&[
                "minimise",
                "--test",
                "x",
                "--list",
                "2",
                "--lane-width",
                "64"
            ])
            .unwrap(),
            Command::Minimise {
                lane_width: LaneWidth::W64,
                ..
            }
        ));
        assert!(matches!(
            parse(&[
                "diagnose",
                "--test",
                "x",
                "--fault",
                "y",
                "--victim",
                "1",
                "--list",
                "2",
                "--lane-width",
                "auto"
            ])
            .unwrap(),
            Command::Diagnose {
                lane_width: LaneWidth::Auto,
                ..
            }
        ));
        // Unknown widths surface the simulator's error text.
        let error = parse(&[
            "coverage",
            "--test",
            "x",
            "--list",
            "1",
            "--lane-width",
            "512",
        ])
        .unwrap_err();
        assert!(error.to_string().contains("unknown lane width"));
        assert!(parse(&["coverage", "--test", "x", "--list", "1", "--lane-width"]).is_err());
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&["serve"]).unwrap(),
            Command::Serve {
                backend: BackendKind::Packed,
                threads: 0,
                lane_width: LaneWidth::Auto,
                max_in_flight: 4,
                timeout_ms: 30_000,
                read_timeout_ms: None,
                snapshot_dir: None,
                tcp: None,
            }
        );
        assert_eq!(
            parse(&[
                "serve",
                "--backend",
                "scalar",
                "--threads",
                "2",
                "--lane-width",
                "128",
                "--max-in-flight",
                "8",
                "--timeout-ms",
                "500",
                "--read-timeout-ms",
                "250",
                "--snapshot-dir",
                "/tmp/snaps",
                "--tcp",
                "127.0.0.1:0",
            ])
            .unwrap(),
            Command::Serve {
                backend: BackendKind::Scalar,
                threads: 2,
                lane_width: LaneWidth::W128,
                max_in_flight: 8,
                timeout_ms: 500,
                read_timeout_ms: Some(250),
                snapshot_dir: Some("/tmp/snaps".into()),
                tcp: Some("127.0.0.1:0".into()),
            }
        );
        assert!(parse(&["serve", "--max-in-flight", "0"]).is_err());
        assert!(parse(&["serve", "--max-in-flight", "lots"]).is_err());
        assert!(parse(&["serve", "--timeout-ms", "soon"]).is_err());
        assert!(parse(&["serve", "--read-timeout-ms", "0"]).is_err());
        assert!(parse(&["serve", "--read-timeout-ms", "never"]).is_err());
        assert!(parse(&["serve", "--snapshot-dir"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
        assert!(parse(&["serve", "--tcp"]).is_err());
    }

    #[test]
    fn parses_snapshot() {
        assert_eq!(
            parse(&["snapshot", "--dir", "/tmp/snaps"]).unwrap(),
            Command::Snapshot {
                dir: "/tmp/snaps".into(),
                warm: false,
                list: None,
                faults: FaultDomain::Ffm,
                test: None,
                cells: None,
            }
        );
        assert_eq!(
            parse(&[
                "snapshot",
                "--dir",
                "/tmp/snaps",
                "--warm",
                "--list",
                "2",
                "--test",
                "March SS",
                "--cells",
                "8",
            ])
            .unwrap(),
            Command::Snapshot {
                dir: "/tmp/snaps".into(),
                warm: true,
                list: Some(CoverageTarget::List2),
                faults: FaultDomain::Ffm,
                test: Some("March SS".into()),
                cells: Some(8),
            }
        );
        // --dir is mandatory; warm-only flags are rejected without --warm;
        // --warm inherits the usual list/domain presence rules.
        assert!(parse(&["snapshot"]).is_err());
        assert!(parse(&["snapshot", "--dir", "/tmp/snaps", "--list", "2"]).is_err());
        assert!(parse(&["snapshot", "--dir", "/tmp/snaps", "--warm"]).is_err());
        assert!(matches!(
            parse(&["snapshot", "--dir", "d", "--warm", "--faults", "af"]).unwrap(),
            Command::Snapshot {
                warm: true,
                list: None,
                faults: FaultDomain::Af,
                ..
            }
        ));
    }

    #[test]
    fn target_labels() {
        assert_eq!(CoverageTarget::List1.label(), "Fault List #1");
        assert_eq!(
            CoverageTarget::parse("unlinked").unwrap(),
            CoverageTarget::Unlinked
        );
        assert!(CoverageTarget::parse("3").is_err());
        assert!(!usage().is_empty());
    }
}
