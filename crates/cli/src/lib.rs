//! # `march-codex-cli`
//!
//! Library backing the `march-codex` command-line tool: a thin, dependency-free
//! argument parser plus the command implementations that tie together the fault
//! model, the march-test catalogue, the fault simulator and the generator.
//!
//! The binary exposes six sub-commands:
//!
//! * `catalog` — list the catalogue of published march tests;
//! * `show <name>` — print one march test in the standard notation;
//! * `generate --list <1|2>` — run the automatic generator of the DATE 2006 paper;
//! * `coverage --test <name> --list <1|2|unlinked>` — fault-simulate a march test
//!   against a fault list;
//! * `diagnose --test <name> --fault <notation> --victim <cell> --list <…>` —
//!   observe a faulty device's syndrome and search the fault space for the
//!   instances that explain it;
//! * `simulate --test <name> --fault <notation> --victim <cell>` — inject a single
//!   fault primitive and show the failure syndrome;
//! * `serve` — keep one shared engine resident and answer newline-delimited
//!   JSON requests (coverage / generate / minimise / diagnose / stats) from
//!   stdin or a TCP socket, all clients sharing its warm artifact store and
//!   worker pool (see [`serve_lines`]).
//!
//! Every invocation builds **one** [`sram_sim::Session`] from the
//! `--backend`/`--threads`/`--batch` execution policy and routes the pipeline
//! through it; `--json` swaps the text output of `coverage`/`generate`/
//! `diagnose` for the session report's machine-readable
//! [`Report`](sram_sim::Report) serialisation.
//!
//! Everything is also usable programmatically; see [`run`] and [`Command`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod json;
mod serve;
pub(crate) mod sync;

pub use args::{Command, CoverageTarget, ParseArgsError};
pub use commands::{run, CliError};
pub use json::{JsonError, JsonValue};
pub use serve::{run_serve, serve_lines, LatencyCounter, ServeMetrics, ServeOptions};

/// Parses command-line arguments (without the program name) and executes the
/// resulting command, returning the rendered output.
///
/// # Errors
///
/// Returns a [`CliError`] when parsing or execution fails; the error message is
/// intended to be printed to stderr verbatim.
pub fn run_from_args<I, S>(args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let command = Command::parse(args.into_iter().map(Into::into))?;
    run(&command)
}
