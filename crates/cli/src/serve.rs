//! `march-codex serve`: one resident shared engine, many concurrent clients.
//!
//! The serve loop reads **newline-delimited JSON requests** (one object per
//! line) from stdin or a TCP socket and writes one JSON response line per
//! request, in request order. Every request runs on a [`Session`] handle
//! stamped out by one process-resident [`SharedEngine`], so all clients —
//! and all requests of one client — share a single warm
//! [`ArtifactStore`](sram_sim::ArtifactStore) and worker pool.
//!
//! Request schema (`op` selects the pipeline stage; the existing `Report`
//! JSON of each stage is the response payload):
//!
//! ```json
//! {"op": "coverage", "test": "March SS", "list": "2", "cells": 8}
//! {"op": "campaign", "test": "March SS", "list": "2", "cells": 8, "sample": 4096, "seed": 7, "confidence": 0.95}
//! {"op": "generate", "list": "2", "name": "March GEN", "no_removal": false}
//! {"op": "minimise", "test": "March SL", "list": "2"}
//! {"op": "diagnose", "test": "March SS", "fault": "<0w1;0/1/->", "victim": 4, "aggressor": 1, "cells": 6, "list": "unlinked"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! Responses are `{"seq": N, "ok": true, "op": …, "report": {…}}` or
//! `{"seq": N, "ok": false, …, "error": {"kind": …, "message": …}}` — a
//! malformed line yields a typed `protocol` error response, never an abort.
//!
//! Concurrency: requests are multiplexed over at most
//! [`ServeOptions::max_in_flight`] concurrent jobs (the reader blocks once
//! they are all busy — natural backpressure onto the client), each job has a
//! deadline of [`ServeOptions::timeout`] (an expired job yields a typed
//! `timeout` error in its slot; its late result is discarded, though its
//! cache warming persists), and responses are re-serialised into request
//! order before writing.
//!
//! Degradation: a `shutdown` request starts a graceful drain — in-flight
//! jobs finish and are answered, new requests (on every connection) get a
//! typed `shutting_down` error, and the TCP listener stops accepting. A
//! client that goes silent past [`ServeOptions::read_timeout`] is answered
//! with a typed `timeout` error and its socket closed; a client that closes
//! its read end mid-transcript (`BrokenPipe`) ends that stream's serve loop
//! cleanly instead of panicking the writer.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::sync::mpsc::{self, Receiver, RecvTimeoutError};
use crate::sync::{thread, Arc, Duration, Instant, Mutex, PoisonError};

use march_gen::{GeneratorConfig, MarchGenerator, SessionExt};
use sram_fault_model::FaultList;
use sram_sim::{CampaignConfig, JsonObject, PlacementStrategy, Report, SharedEngine};

use crate::args::{require_list, CoverageTarget, FaultDomain};
use crate::commands::{
    build_injection, find_primitive, lookup, resolve_list, validate_scope, CliError,
};
use crate::json::JsonValue;

/// Tuning knobs of the serve loop.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Maximum concurrently executing jobs; the reader blocks (backpressure)
    /// once this many are in flight.
    pub max_in_flight: usize,
    /// Per-job deadline: a request still unanswered this long after being
    /// accepted yields a typed `timeout` error response in its slot.
    pub timeout: Duration,
    /// Per-connection read timeout: a TCP client that sends nothing for this
    /// long is answered with a typed `timeout` error and its socket closed,
    /// so stalled clients cannot hold connection slots forever. `None` (the
    /// default) waits indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_in_flight: 4,
            timeout: Duration::from_secs(30),
            read_timeout: None,
        }
    }
}

/// One latency counter of [`ServeMetrics`]: request count, summed and maximum
/// wall-clock execution time.
#[derive(Debug, Default)]
pub struct LatencyCounter {
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyCounter {
    fn record(&self, elapsed: Duration) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Requests recorded under this kind.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .number("count", self.count.load(Ordering::Relaxed))
            .number("total_micros", self.total_micros.load(Ordering::Relaxed))
            .number("max_micros", self.max_micros.load(Ordering::Relaxed))
            .build()
    }
}

/// Service metrics exposed by the `stats` request: per-kind latency counters
/// plus error/timeout totals. Engine-level counters (`workers_spawned`,
/// `jobs_executed`, `cache_hits`, `cached_artifacts`, `cached_dictionaries`)
/// are read live off the [`SharedEngine`].
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Latency of `coverage` requests.
    pub coverage: LatencyCounter,
    /// Latency of `campaign` requests.
    pub campaign: LatencyCounter,
    /// Latency of `generate` requests.
    pub generate: LatencyCounter,
    /// Latency of `minimise` requests.
    pub minimise: LatencyCounter,
    /// Latency of `diagnose` requests.
    pub diagnose: LatencyCounter,
    /// Latency of `stats` requests themselves.
    pub stats: LatencyCounter,
    /// Requests answered with a typed error (protocol or execution).
    pub errors: AtomicU64,
    /// Requests that exceeded their deadline.
    pub timeouts: AtomicU64,
}

impl ServeMetrics {
    fn counter(&self, op: &'static str) -> &LatencyCounter {
        match op {
            "coverage" => &self.coverage,
            "campaign" => &self.campaign,
            "generate" => &self.generate,
            "minimise" => &self.minimise,
            "diagnose" => &self.diagnose,
            _ => &self.stats,
        }
    }

    fn to_json(&self, engine: &SharedEngine) -> String {
        let requests = JsonObject::new()
            .raw("coverage", self.coverage.to_json())
            .raw("campaign", self.campaign.to_json())
            .raw("generate", self.generate.to_json())
            .raw("minimise", self.minimise.to_json())
            .raw("diagnose", self.diagnose.to_json())
            .raw("stats", self.stats.to_json())
            .build();
        let mut response = JsonObject::new()
            .number("workers_spawned", engine.workers_spawned() as u64)
            .number("jobs_executed", engine.jobs_executed() as u64)
            .number("cache_hits", engine.cache_hits() as u64)
            .number("cached_artifacts", engine.cached_artifacts() as u64)
            .number("cached_dictionaries", engine.cached_dictionaries() as u64)
            .raw("requests", requests)
            .number("errors", self.errors.load(Ordering::Relaxed))
            .number("timeouts", self.timeouts.load(Ordering::Relaxed));
        // The snapshot object appears only when persistence is attached, so
        // snapshot-less transcripts stay byte-identical to older builds.
        if let Some(snapshot) = engine.snapshot_stats() {
            let mut layer = JsonObject::new()
                .string("dir", &snapshot.dir)
                .boolean("degraded", snapshot.degraded)
                .number("hits", snapshot.hits as u64)
                .number("misses", snapshot.misses as u64)
                .number("writes", snapshot.writes as u64)
                .number("write_failures", snapshot.write_failures as u64)
                .number("quarantined", snapshot.quarantined as u64);
            if let Some(last_error) = &snapshot.last_error {
                layer = layer.string("last_error", last_error);
            }
            response = response.raw("snapshot", layer.build());
        }
        response.build()
    }
}

/// One parsed, executable request.
#[derive(Debug)]
enum Request {
    Coverage {
        test: String,
        list: FaultList,
        cells: Option<usize>,
        exhaustive: bool,
    },
    Campaign {
        test: String,
        list: FaultList,
        cells: Option<usize>,
        sample: u64,
        seed: u64,
        confidence: f64,
    },
    Generate {
        list: FaultList,
        cells: Option<usize>,
        no_removal: bool,
        name: Option<String>,
    },
    Minimise {
        test: String,
        list: FaultList,
        cells: Option<usize>,
    },
    Diagnose {
        test: String,
        fault: String,
        victim: usize,
        aggressor: Option<usize>,
        cells: usize,
        list: FaultList,
    },
    Stats,
    Shutdown,
}

impl Request {
    fn op(&self) -> &'static str {
        match self {
            Request::Coverage { .. } => "coverage",
            Request::Campaign { .. } => "campaign",
            Request::Generate { .. } => "generate",
            Request::Minimise { .. } => "minimise",
            Request::Diagnose { .. } => "diagnose",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

fn field_str(value: &JsonValue, key: &str) -> Result<Option<String>, CliError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field
            .as_str()
            .map(|text| Some(text.to_string()))
            .ok_or_else(|| CliError::Arguments(format!("field `{key}` must be a string"))),
    }
}

fn field_usize(value: &JsonValue, key: &str) -> Result<Option<usize>, CliError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field.as_usize().map(Some).ok_or_else(|| {
            CliError::Arguments(format!("field `{key}` must be a non-negative integer"))
        }),
    }
}

/// Decodes an optional exact-integer `u64` field. Fractions, negatives,
/// values past 2^53 and the infinities `1e999` parses to are all typed
/// `protocol` errors — never a silent `as`-cast truncation.
fn field_u64(value: &JsonValue, key: &str) -> Result<Option<u64>, CliError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field.as_u64().map(Some).ok_or_else(|| {
            CliError::Arguments(format!(
                "field `{key}` must be a non-negative integer (at most 2^53)"
            ))
        }),
    }
}

/// Decodes an optional finite float field; `1e999` (infinite) and friends are
/// typed `protocol` errors.
fn field_finite_f64(value: &JsonValue, key: &str) -> Result<Option<f64>, CliError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => field
            .as_finite_f64()
            .map(Some)
            .ok_or_else(|| CliError::Arguments(format!("field `{key}` must be a finite number"))),
    }
}

fn field_bool(value: &JsonValue, key: &str) -> Result<bool, CliError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(field) => field
            .as_bool()
            .ok_or_else(|| CliError::Arguments(format!("field `{key}` must be a boolean"))),
    }
}

fn required_str(value: &JsonValue, key: &str, op: &str) -> Result<String, CliError> {
    field_str(value, key)?
        .ok_or_else(|| CliError::Arguments(format!("{op} requires a string `{key}` field")))
}

/// The fault list of a request's `list`/`faults` fields, with the same
/// presence rules as the command-line flags.
fn parse_request_list(value: &JsonValue, op: &str) -> Result<FaultList, CliError> {
    let faults = match field_str(value, "faults")? {
        Some(text) => FaultDomain::parse(&text)?,
        None => FaultDomain::Ffm,
    };
    let target = field_str(value, "list")?
        .map(|text| CoverageTarget::parse(&text))
        .transpose()?;
    require_list(target, faults, op)?;
    resolve_list(target, faults)
}

/// Parses one request line into a [`Request`], with typed errors for every
/// malformed shape.
fn parse_request(line: &str) -> Result<Request, CliError> {
    let value = JsonValue::parse(line)
        .map_err(|error| CliError::Arguments(format!("malformed JSON request: {error}")))?;
    if !matches!(value, JsonValue::Object(_)) {
        return Err(CliError::Arguments(
            "request must be a JSON object".to_string(),
        ));
    }
    let op = required_str(&value, "op", "every request")?;
    match op.as_str() {
        "coverage" => Ok(Request::Coverage {
            test: field_str(&value, "test")?.unwrap_or_else(|| "March SS".to_string()),
            list: parse_request_list(&value, "coverage")?,
            cells: field_usize(&value, "cells")?,
            exhaustive: field_bool(&value, "exhaustive")?,
        }),
        "campaign" => {
            let sample = field_u64(&value, "sample")?.ok_or_else(|| {
                CliError::Arguments("campaign requires a `sample` draw count".to_string())
            })?;
            if sample == 0 {
                return Err(CliError::Arguments(
                    "field `sample` must be at least 1".to_string(),
                ));
            }
            let confidence = field_finite_f64(&value, "confidence")?.unwrap_or(0.95);
            if confidence <= 0.0 || confidence >= 1.0 {
                return Err(CliError::Arguments(
                    "field `confidence` must lie strictly between 0 and 1".to_string(),
                ));
            }
            Ok(Request::Campaign {
                test: field_str(&value, "test")?.unwrap_or_else(|| "March SS".to_string()),
                list: parse_request_list(&value, "campaign")?,
                cells: field_usize(&value, "cells")?,
                sample,
                seed: field_u64(&value, "seed")?.unwrap_or(0),
                confidence,
            })
        }
        "generate" => Ok(Request::Generate {
            list: parse_request_list(&value, "generate")?,
            cells: field_usize(&value, "cells")?,
            no_removal: field_bool(&value, "no_removal")?,
            name: field_str(&value, "name")?,
        }),
        "minimise" | "minimize" => Ok(Request::Minimise {
            test: required_str(&value, "test", "minimise")?,
            list: parse_request_list(&value, "minimise")?,
            cells: field_usize(&value, "cells")?,
        }),
        "diagnose" => Ok(Request::Diagnose {
            test: required_str(&value, "test", "diagnose")?,
            fault: required_str(&value, "fault", "diagnose")?,
            victim: field_usize(&value, "victim")?
                .ok_or_else(|| CliError::Arguments("diagnose requires `victim`".to_string()))?,
            aggressor: field_usize(&value, "aggressor")?,
            cells: field_usize(&value, "cells")?.unwrap_or(8),
            list: parse_request_list(&value, "diagnose")?,
        }),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(CliError::Arguments(format!(
            "unknown op `{other}` (expected coverage, campaign, generate, minimise, diagnose, \
             stats or shutdown)"
        ))),
    }
}

/// Executes one request on a fresh session handle of `engine`, returning the
/// report JSON fragment.
fn execute(
    engine: &SharedEngine,
    metrics: &ServeMetrics,
    request: &Request,
) -> Result<String, CliError> {
    match request {
        Request::Coverage {
            test,
            list,
            cells,
            exhaustive,
        } => {
            let test = lookup(test)?;
            let mut session = engine.session();
            if *exhaustive {
                session = session.with_strategy(PlacementStrategy::Exhaustive);
            }
            if let Some(cells) = cells {
                session = session.with_memory_cells(*cells);
            }
            session
                .try_coverage(&test, list)
                .map(|report| report.to_json())
                .map_err(|error| CliError::Simulation(error.to_string()))
        }
        Request::Campaign {
            test,
            list,
            cells,
            sample,
            seed,
            confidence,
        } => {
            let test = lookup(test)?;
            let mut session = engine.session();
            if let Some(cells) = cells {
                session = session.with_memory_cells(*cells);
            }
            let config = CampaignConfig::default()
                .with_draws(*sample)
                .with_seed(*seed)
                .with_confidence(*confidence);
            session
                .try_campaign(&test, list, &config)
                .map(|report| report.to_json())
                .map_err(|error| CliError::Simulation(error.to_string()))
        }
        Request::Generate {
            list,
            cells,
            no_removal,
            name,
        } => {
            let mut session = engine.session();
            if let Some(cells) = cells {
                session = session.with_memory_cells(*cells);
            }
            validate_scope(&session, list)?;
            let base = if *no_removal {
                GeneratorConfig::without_redundancy_removal()
            } else {
                GeneratorConfig::default()
            };
            let config = GeneratorConfig {
                memory_cells: session.memory_cells(),
                strategy: session.strategy(),
                backgrounds: session.backgrounds().to_vec(),
                exec: session.policy(),
                ..base
            };
            let generator = MarchGenerator::with_config(list.clone(), config)
                .named(name.clone().unwrap_or_else(|| "March GEN".to_string()));
            Ok(generator.generate_with(&session).to_json())
        }
        Request::Minimise { test, list, cells } => {
            let test = lookup(test)?;
            let mut session = engine.session();
            if let Some(cells) = cells {
                session = session.with_memory_cells(*cells);
            }
            validate_scope(&session, list)?;
            Ok(session.minimise(&test, list).to_json())
        }
        Request::Diagnose {
            test,
            fault,
            victim,
            aggressor,
            cells,
            list,
        } => {
            let test = lookup(test)?;
            let primitive = find_primitive(fault)?;
            let injected = build_injection(&primitive, *victim, *aggressor, *cells)?;
            let session = engine.session().with_memory_cells(*cells);
            validate_scope(&session, list)?;
            let syndrome = session
                .observe(&test, &injected)
                .map_err(|error| CliError::Simulation(error.to_string()))?;
            // Diagnosis goes through the memoised dictionary, so a repeated
            // query over the same (test, list, scope) is one index lookup —
            // the warm path the service exists for.
            let dictionary = session.dictionary(&test, list);
            Ok(session.diagnose(&syndrome, &dictionary).to_json())
        }
        Request::Stats => Ok(metrics.to_json(engine)),
        // Shutdown is answered inline by the reader (it must observe the
        // drain flag before the next request is parsed); this arm only keeps
        // the dispatch total if one ever reaches a worker.
        Request::Shutdown => Ok(JsonObject::new()
            .string("report", "shutdown")
            .boolean("draining", true)
            .build()),
    }
}

/// The machine-readable kind tag of a [`CliError`].
fn error_kind(error: &CliError) -> &'static str {
    match error {
        CliError::Arguments(_) => "protocol",
        CliError::UnknownTest(_) => "unknown_test",
        CliError::UnknownFault(_) => "unknown_fault",
        CliError::Simulation(_) => "simulation",
    }
}

fn error_line(seq: u64, op: Option<&str>, kind: &str, message: &str) -> String {
    let mut response = JsonObject::new().number("seq", seq).boolean("ok", false);
    if let Some(op) = op {
        response = response.string("op", op);
    }
    response
        .raw(
            "error",
            JsonObject::new()
                .string("kind", kind)
                .string("message", message)
                .build(),
        )
        .build()
}

fn ok_line(seq: u64, op: &str, report: String) -> String {
    JsonObject::new()
        .number("seq", seq)
        .boolean("ok", true)
        .string("op", op)
        .raw("report", report)
        .build()
}

/// Writes one response line and flushes, treating a broken output pipe (the
/// client closed its read end mid-transcript) as an orderly end of the
/// stream: returns `Ok(false)` so the caller stops writing, instead of
/// surfacing an error or panicking the writer thread.
fn write_line<W: Write>(output: &mut W, line: &str) -> io::Result<bool> {
    match writeln!(output, "{line}").and_then(|()| output.flush()) {
        Ok(()) => Ok(true),
        Err(error) if error.kind() == io::ErrorKind::BrokenPipe => Ok(false),
        Err(error) => Err(error),
    }
}

/// A message on the collector channel: either "seq N was accepted with this
/// deadline" (sent by the reader **before** the job is dispatched, so it
/// always arrives first) or "seq N finished with this response line".
enum Outcome {
    Accepted { seq: u64, deadline: Instant },
    Finished { seq: u64, line: String },
}

/// Re-serialises concurrently finishing jobs into request order and writes
/// one response line per request, substituting a typed `timeout` error for
/// any job that misses its deadline (the late result is then discarded).
fn collect_in_order<W: Write>(
    rx: &Receiver<Outcome>,
    output: &mut W,
    metrics: &ServeMetrics,
    timeout: Duration,
) -> io::Result<()> {
    let mut next = 0u64;
    let mut ready: HashMap<u64, String> = HashMap::new();
    let mut deadlines: HashMap<u64, Instant> = HashMap::new();
    let mut timed_out: HashSet<u64> = HashSet::new();
    loop {
        while let Some(line) = ready.remove(&next) {
            if !write_line(output, &line)? {
                return Ok(());
            }
            next += 1;
        }
        // Wait bounded by the pending head-of-line deadline (if any); other
        // seqs cannot time out earlier than `next` because deadlines are
        // assigned in accept order.
        let message = match deadlines.get(&next) {
            Some(deadline) => {
                // lint: allow(timing) — façade `Instant`: reads the explorer's
                // virtual clock under cfg(interleave), the real one otherwise.
                match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                    Ok(message) => Some(message),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv() {
                Ok(message) => Some(message),
                Err(_) => break,
            },
        };
        match message {
            Some(Outcome::Accepted { seq, deadline }) => {
                deadlines.insert(seq, deadline);
            }
            Some(Outcome::Finished { seq, line }) => {
                deadlines.remove(&seq);
                // A slot already answered with a timeout drops its late
                // result — the response order is already fixed.
                if !timed_out.remove(&seq) {
                    ready.insert(seq, line);
                }
            }
            None => {
                deadlines.remove(&next);
                timed_out.insert(next);
                metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                metrics.errors.fetch_add(1, Ordering::Relaxed);
                ready.insert(
                    next,
                    error_line(
                        next,
                        None,
                        "timeout",
                        &format!("request exceeded the {}ms deadline", timeout.as_millis()),
                    ),
                );
            }
        }
    }
    while let Some(line) = ready.remove(&next) {
        if !write_line(output, &line)? {
            return Ok(());
        }
        next += 1;
    }
    Ok(())
}

/// Runs the serve loop over one request stream: reads NDJSON requests from
/// `input`, executes them on session handles of `engine` with at most
/// [`ServeOptions::max_in_flight`] concurrent jobs, and writes one response
/// line per request (in request order) to `output`.
///
/// Returns when `input` reaches end-of-file and every accepted request has
/// been answered.
///
/// # Errors
///
/// Returns the first I/O error of `input` or `output`; request-level failures
/// (malformed JSON, unknown tests, simulation errors, deadline misses) are
/// answered as typed JSON error responses instead.
pub fn serve_lines<R, W>(
    input: R,
    output: &mut W,
    engine: &Arc<SharedEngine>,
    metrics: &Arc<ServeMetrics>,
    options: &ServeOptions,
) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let draining = AtomicBool::new(false);
    serve_lines_draining(input, output, engine, metrics, options, &draining)
}

/// [`serve_lines`] with a shared drain flag: a `shutdown` request sets the
/// flag (shared across every connection of a TCP listener), after which new
/// requests on any stream are answered with a typed `shutting_down` error
/// while already-accepted jobs finish and are answered normally.
fn serve_lines_draining<R, W>(
    input: R,
    output: &mut W,
    engine: &Arc<SharedEngine>,
    metrics: &Arc<ServeMetrics>,
    options: &ServeOptions,
    draining: &AtomicBool,
) -> io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let workers = options.max_in_flight.max(1);
    // Rendezvous job channel: with `workers` executors, at most
    // `max_in_flight` jobs run concurrently and the reader blocks on the
    // send once all of them are busy — backpressure without buffering.
    let (job_tx, job_rx) = mpsc::sync_channel::<(u64, Request)>(0);
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (out_tx, out_rx) = mpsc::channel::<Outcome>();

    thread::scope(|scope| -> io::Result<()> {
        let collector = scope.spawn({
            let metrics = Arc::clone(metrics);
            let timeout = options.timeout;
            move || collect_in_order(&out_rx, output, &metrics, timeout)
        });
        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let out_tx = out_tx.clone();
            let engine = Arc::clone(engine);
            let metrics = Arc::clone(metrics);
            scope.spawn(move || loop {
                // Poison recovery: the lock only serialises `recv` calls (no
                // job runs under it), so a panicked sibling worker leaves the
                // receiver usable and the remaining workers keep serving.
                let received = job_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                let Ok((seq, request)) = received else {
                    break;
                };
                let op = request.op();
                // lint: allow(timing) — façade `Instant` feeding the latency
                // metrics only; never printed into response bytes.
                let started = Instant::now();
                let line = match execute(&engine, &metrics, &request) {
                    Ok(report) => ok_line(seq, op, report),
                    Err(error) => {
                        metrics.errors.fetch_add(1, Ordering::Relaxed);
                        error_line(seq, Some(op), error_kind(&error), &error.to_string())
                    }
                };
                metrics.counter(op).record(started.elapsed());
                if out_tx.send(Outcome::Finished { seq, line }).is_err() {
                    break;
                }
            });
        }
        // Drop the reader's own handle on the job receiver: the workers hold
        // their clones, so once they all exit (e.g. the collector died on a
        // broken pipe and their result sends failed) the rendezvous channel
        // closes and `job_tx.send` below errors instead of blocking forever.
        drop(job_rx);

        let mut seq = 0u64;
        let mut read_error = None;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(error) => {
                    if matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) {
                        // The connection's read timeout fired: answer the
                        // would-be next request with a typed error and close
                        // the stream cleanly so a stalled client cannot hold
                        // its slot forever.
                        metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                        metrics.errors.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Outcome::Finished {
                            seq,
                            line: error_line(
                                seq,
                                None,
                                "timeout",
                                "connection idle past the read timeout; closing",
                            ),
                        });
                    } else {
                        read_error = Some(error);
                    }
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // Accept-order bookkeeping must reach the collector before the
            // job can finish; both messages ride the same channel, so the
            // send below happens-before any Finished for this seq.
            let _ = out_tx.send(Outcome::Accepted {
                seq,
                // lint: allow(timing) — façade `Instant`: deadline assignment
                // is what the interleave model test drives through the
                // virtual clock.
                deadline: Instant::now() + options.timeout,
            });
            match parse_request(&line) {
                Ok(Request::Shutdown) => {
                    draining.store(true, Ordering::SeqCst);
                    let _ = out_tx.send(Outcome::Finished {
                        seq,
                        line: ok_line(
                            seq,
                            "shutdown",
                            JsonObject::new()
                                .string("report", "shutdown")
                                .boolean("draining", true)
                                .build(),
                        ),
                    });
                }
                Ok(request) if draining.load(Ordering::SeqCst) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = out_tx.send(Outcome::Finished {
                        seq,
                        line: error_line(
                            seq,
                            Some(request.op()),
                            "shutting_down",
                            "service is draining; no new work accepted",
                        ),
                    });
                }
                Ok(request) => {
                    if job_tx.send((seq, request)).is_err() {
                        break;
                    }
                }
                Err(error) => {
                    metrics.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = out_tx.send(Outcome::Finished {
                        seq,
                        line: error_line(seq, None, error_kind(&error), &error.to_string()),
                    });
                }
            }
            seq += 1;
        }
        // Closing the job channel stops the workers once the queue drains;
        // their `out_tx` clones (and ours) then close the collector channel.
        drop(job_tx);
        drop(out_tx);
        let collected = collector
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("serve output collector panicked")));
        match read_error {
            Some(error) => Err(error),
            None => collected,
        }
    })
}

/// Serves every connection accepted by `listener`, one thread per client,
/// all sharing `engine`, `metrics` and the drain flag — the cross-client
/// warm cache. Accepting is non-blocking so the loop can observe a
/// `shutdown` request (from any connection) and stop taking new clients;
/// in-flight connections are drained before the function returns.
fn serve_listener(
    listener: &TcpListener,
    engine: &Arc<SharedEngine>,
    metrics: &Arc<ServeMetrics>,
    options: ServeOptions,
    draining: &AtomicBool,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    thread::scope(|scope| {
        loop {
            if draining.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let engine = Arc::clone(engine);
                    let metrics = Arc::clone(metrics);
                    scope.spawn(move || {
                        // The listener is non-blocking only for accept
                        // polling; each stream reverts to blocking reads,
                        // bounded by the per-connection read timeout.
                        if stream.set_nonblocking(false).is_err() {
                            return;
                        }
                        if stream.set_read_timeout(options.read_timeout).is_err() {
                            return;
                        }
                        let reader = match stream.try_clone() {
                            Ok(clone) => BufReader::new(clone),
                            Err(_) => return,
                        };
                        let mut writer = stream;
                        let _ = serve_lines_draining(
                            reader,
                            &mut writer,
                            &engine,
                            &metrics,
                            &options,
                            draining,
                        );
                    });
                }
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    // Nothing to accept: poll the drain flag. A plain OS
                    // sleep — the accept loop is real I/O that the
                    // interleave explorer never drives.
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
                Err(error) => return Err(error),
            }
        }
        Ok(())
    })
}

/// Entry point of the `serve` subcommand: builds the resident engine on the
/// process-wide artifact store and serves stdin/stdout, or every client of a
/// TCP listener when `tcp` is set.
///
/// # Errors
///
/// Returns an [`io::Error`] when the socket cannot be bound or a stream
/// fails; per-request failures are typed JSON error responses.
pub fn run_serve(
    engine: &Arc<SharedEngine>,
    options: ServeOptions,
    tcp: Option<&str>,
) -> io::Result<()> {
    let metrics = Arc::new(ServeMetrics::default());
    let draining = AtomicBool::new(false);
    match tcp {
        Some(address) => {
            let listener = TcpListener::bind(address)?;
            // Announce the bound address (the port may have been chosen by
            // the OS via `:0`) so clients and scripts can connect. A broken
            // stdout (closed pager, detached supervisor) must not abort the
            // service — TCP clients are the real consumers here.
            let mut stdout = io::stdout();
            write_line(
                &mut stdout,
                &format!("listening on {}", listener.local_addr()?),
            )?;
            serve_listener(&listener, engine, &metrics, options, &draining)
        }
        None => {
            let stdin = io::stdin();
            // `Stdout` (unlike `StdoutLock`) is `Send`, which the collector
            // thread needs; it still locks internally per write.
            let mut stdout = io::stdout();
            serve_lines_draining(
                stdin.lock(),
                &mut stdout,
                engine,
                &metrics,
                &options,
                &draining,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_sim::ExecPolicy;
    use std::net::TcpStream;

    fn engine() -> Arc<SharedEngine> {
        SharedEngine::new(ExecPolicy::default().with_threads(2))
    }

    fn serve_script(
        engine: &Arc<SharedEngine>,
        metrics: &Arc<ServeMetrics>,
        options: &ServeOptions,
        script: &str,
    ) -> Vec<String> {
        let mut output = Vec::new();
        serve_lines(script.as_bytes(), &mut output, engine, metrics, options).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn answers_requests_in_order_with_shared_cache() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let script = concat!(
            r#"{"op": "coverage", "test": "March ABL1", "list": "2"}"#,
            "\n",
            r#"{"op": "coverage", "test": "March ABL1", "list": "2"}"#,
            "\n",
            r#"{"op": "stats"}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), script);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\": 0, \"ok\": true, \"op\": \"coverage\""));
        assert!(lines[1].starts_with("{\"seq\": 1, \"ok\": true, \"op\": \"coverage\""));
        // Byte-identical repeated reports, answered from the shared store.
        assert_eq!(lines[0].replacen("\"seq\": 0", "\"seq\": 1", 1), lines[1]);
        assert!(engine.cache_hits() >= 1);
        assert!(lines[2].contains("\"cache_hits\": "));
        assert!(lines[2].contains("\"workers_spawned\": 1"));
        assert_eq!(metrics.coverage.count(), 2);
        assert_eq!(metrics.stats.count(), 1);
    }

    #[test]
    fn malformed_and_failing_requests_yield_typed_errors() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let script = concat!(
            "this is not json\n",
            r#"{"op": "launch-missiles"}"#,
            "\n",
            r#"{"op": "coverage", "test": "no such test", "list": "2"}"#,
            "\n",
            r#"{"op": "coverage", "test": "March SS", "list": "2", "cells": 2}"#,
            "\n",
            r#"{"op": "coverage", "test": "March SS"}"#,
            "\n",
            r#"{"op": "diagnose", "test": "March SS", "fault": "<bogus>", "victim": 1, "list": "2"}"#,
            "\n",
            r#"{"op": "coverage", "test": "March SS", "list": "2", "cells": "eight"}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), script);
        assert_eq!(lines.len(), 7);
        for (index, kind) in [
            "protocol",
            "protocol",
            "unknown_test",
            "simulation",
            "protocol",
            "unknown_fault",
            "protocol",
        ]
        .iter()
        .enumerate()
        {
            assert!(
                lines[index].contains("\"ok\": false"),
                "line {index}: {}",
                lines[index]
            );
            assert!(
                lines[index].contains(&format!("\"kind\": \"{kind}\"")),
                "line {index}: {}",
                lines[index]
            );
            assert!(lines[index].starts_with(&format!("{{\"seq\": {index}")));
        }
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn all_ops_round_trip() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let script = concat!(
            r#"{"op": "generate", "list": "2", "name": "March SRV"}"#,
            "\n",
            r#"{"op": "minimise", "test": "March SL", "list": "2"}"#,
            "\n",
            r#"{"op": "diagnose", "test": "March SS", "fault": "<0w1;0/1/->", "victim": 4, "aggressor": 1, "cells": 6, "list": "unlinked"}"#,
            "\n",
            r#"{"op": "coverage", "faults": "af", "cells": 64}"#,
            "\n",
            r#"{"op": "campaign", "test": "March C-", "list": "1", "sample": 128, "seed": 7}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), script);
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"report\": {\"report\": \"generation\""));
        assert!(lines[0].contains("March SRV"));
        assert!(lines[1].contains("\"report\": {\"report\": \"minimisation\""));
        assert!(lines[2].contains("\"report\": {\"report\": \"diagnosis\""));
        assert!(lines[2].contains("\"candidates\": ["));
        assert!(lines[3].contains("\"ok\": true"));
        assert!(lines[4].contains("\"report\": {\"report\": \"campaign\""));
        assert!(lines[4].contains("\"seed\": 7"));
        assert_eq!(metrics.generate.count(), 1);
        assert_eq!(metrics.minimise.count(), 1);
        assert_eq!(metrics.diagnose.count(), 1);
        assert_eq!(metrics.campaign.count(), 1);
    }

    #[test]
    fn campaign_requests_validate_numeric_fields() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        // Every degenerate numeric shape is a typed protocol error — the
        // infinite `1e999`, fractions, zero draws, a negative seed, an
        // out-of-range confidence and a missing draw count alike.
        let script = concat!(
            r#"{"op": "campaign", "list": "1", "sample": 1e999}"#,
            "\n",
            r#"{"op": "campaign", "list": "1", "sample": 2.5}"#,
            "\n",
            r#"{"op": "campaign", "list": "1"}"#,
            "\n",
            r#"{"op": "campaign", "list": "1", "sample": 64, "confidence": 1.5}"#,
            "\n",
            r#"{"op": "campaign", "list": "1", "sample": 64, "seed": -1}"#,
            "\n",
            r#"{"op": "campaign", "list": "1", "sample": 0}"#,
            "\n",
            r#"{"op": "campaign", "test": "March C-", "list": "1", "sample": 64, "seed": 3}"#,
            "\n",
            r#"{"op": "campaign", "test": "March C-", "list": "1", "sample": 64, "seed": 3}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), script);
        assert_eq!(lines.len(), 8);
        for (index, line) in lines.iter().take(6).enumerate() {
            assert!(line.contains("\"ok\": false"), "line {index}: {line}");
            assert!(
                line.contains("\"kind\": \"protocol\""),
                "line {index}: {line}"
            );
        }
        // The well-formed pair replays byte-identically (same seed, shared
        // engine) modulo the sequence number.
        assert!(lines[6].contains("\"ok\": true"));
        assert_eq!(lines[6].replacen("\"seq\": 6", "\"seq\": 7", 1), lines[7]);
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.campaign.count(), 2);
    }

    #[test]
    fn repeated_diagnosis_hits_the_dictionary_cache() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let request = concat!(
            r#"{"op": "diagnose", "test": "March SS", "fault": "<0w1;0/1/->", "victim": 4, "aggressor": 1, "cells": 6, "list": "unlinked"}"#,
            "\n",
        );
        let script = request.repeat(3);
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), &script);
        assert_eq!(lines.len(), 3);
        // Drops the leading `"seq": N` field so transcript lines can be
        // compared across their sequence numbers; fails with the offending
        // line instead of a bare unwrap panic when a response is malformed.
        let strip_seq = |line: &str| {
            let (prefix, rest) = line.split_once(',').unwrap_or_else(|| {
                panic!("malformed transcript line (no `,` after the seq field): {line:?}")
            });
            assert!(
                prefix.starts_with("{\"seq\": "),
                "malformed transcript line (expected a leading seq field): {line:?}"
            );
            rest.to_string()
        };
        assert_eq!(strip_seq(&lines[0]), strip_seq(&lines[1]));
        assert_eq!(strip_seq(&lines[0]), strip_seq(&lines[2]));
        assert_eq!(engine.cached_dictionaries(), 1);
        assert!(engine.cache_hits() >= 2);
    }

    #[test]
    fn expired_jobs_answer_with_a_timeout_error() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let options = ServeOptions {
            max_in_flight: 2,
            timeout: Duration::from_millis(0),
            read_timeout: None,
        };
        let script = concat!(
            r#"{"op": "generate", "list": "1"}"#,
            "\n",
            r#"{"op": "stats"}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &options, script);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"timeout\""), "{}", lines[0]);
        assert!(lines[0].starts_with("{\"seq\": 0"));
        assert!(metrics.timeouts.load(Ordering::Relaxed) >= 1);
        // Responses stay in request order even with the timeout interleaved.
        assert!(lines[1].starts_with("{\"seq\": 1"));
    }

    #[test]
    fn tcp_clients_share_one_engine() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();
        {
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            thread::spawn(move || {
                let draining = AtomicBool::new(false);
                let _ = serve_listener(
                    &listener,
                    &engine,
                    &metrics,
                    ServeOptions::default(),
                    &draining,
                );
            });
        }
        let request = "{\"op\": \"coverage\", \"test\": \"March ABL1\", \"list\": \"2\"}\n";
        let mut replies = Vec::new();
        for _ in 0..2 {
            let mut stream = TcpStream::connect(address).unwrap();
            stream.write_all(request.as_bytes()).unwrap();
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            BufReader::new(&mut stream).read_line(&mut reply).unwrap();
            replies.push(reply);
        }
        assert_eq!(replies[0], replies[1]);
        assert!(replies[0].contains("\"ok\": true"));
        // The second client's identical request hit the first client's cache.
        assert!(engine.cache_hits() >= 1);
        assert_eq!(engine.cached_artifacts(), 1);
    }

    #[test]
    fn shutdown_drains_and_rejects_followup_requests() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let script = concat!(
            r#"{"op": "coverage", "test": "March ABL1", "list": "2"}"#,
            "\n",
            r#"{"op": "shutdown"}"#,
            "\n",
            r#"{"op": "coverage", "test": "March ABL1", "list": "2"}"#,
            "\n",
            r#"{"op": "stats"}"#,
            "\n",
        );
        let lines = serve_script(&engine, &metrics, &ServeOptions::default(), script);
        assert_eq!(lines.len(), 4);
        // The in-flight request before the shutdown is answered normally.
        assert!(lines[0].starts_with("{\"seq\": 0, \"ok\": true, \"op\": \"coverage\""));
        assert!(lines[1].contains("\"op\": \"shutdown\""), "{}", lines[1]);
        assert!(lines[1].contains("\"draining\": true"), "{}", lines[1]);
        // Everything after the shutdown gets a typed drain rejection, still
        // in order and still tagged with the op it tried to run.
        for (index, op) in [(2usize, "coverage"), (3, "stats")] {
            assert!(
                lines[index].contains("\"kind\": \"shutting_down\""),
                "line {index}: {}",
                lines[index]
            );
            assert!(
                lines[index].contains(&format!("\"op\": \"{op}\"")),
                "line {index}: {}",
                lines[index]
            );
        }
        assert_eq!(metrics.errors.load(Ordering::Relaxed), 2);
    }

    /// A writer that reports `BrokenPipe` after its first successful write,
    /// like a TCP peer (or a pager on stdout) that hung up mid-transcript.
    struct HangsUpAfterOneLine {
        writes: usize,
    }

    impl Write for HangsUpAfterOneLine {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            if self.writes >= 1 {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "client hung up"));
            }
            self.writes += 1;
            Ok(data.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_pipe_mid_transcript_is_an_orderly_shutdown() {
        // More requests than workers after the writer dies: the collector
        // exits on the broken pipe, the workers drain out behind it, and the
        // reader's rendezvous send errors instead of blocking forever — the
        // serve loop returns Ok rather than panicking or hanging.
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let options = ServeOptions {
            max_in_flight: 1,
            timeout: Duration::from_secs(60),
            read_timeout: None,
        };
        let script = "{\"op\": \"stats\"}\n".repeat(6);
        let mut output = HangsUpAfterOneLine { writes: 0 };
        serve_lines(script.as_bytes(), &mut output, &engine, &metrics, &options)
            .expect("a hung-up client is not a serve error");
    }

    #[test]
    fn idle_tcp_connections_time_out_with_a_typed_error() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();
        let options = ServeOptions {
            max_in_flight: 2,
            timeout: Duration::from_secs(30),
            read_timeout: Some(Duration::from_millis(100)),
        };
        {
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            thread::spawn(move || {
                let draining = AtomicBool::new(false);
                let _ = serve_listener(&listener, &engine, &metrics, options, &draining);
            });
        }
        // Send one request, then go silent with the connection held open.
        let mut stream = TcpStream::connect(address).unwrap();
        stream
            .write_all(b"{\"op\": \"coverage\", \"test\": \"March ABL1\", \"list\": \"2\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.contains("\"ok\": true"), "{first}");
        // The server answers the idle slot with a typed timeout...
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert!(second.contains("\"kind\": \"timeout\""), "{second}");
        assert!(second.contains("read timeout"), "{second}");
        // ...and then closes the socket cleanly (EOF, not a reset).
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
        assert!(metrics.timeouts.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn shutdown_stops_the_tcp_listener() {
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let address = listener.local_addr().unwrap();
        let server = {
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            thread::spawn(move || {
                let draining = AtomicBool::new(false);
                serve_listener(
                    &listener,
                    &engine,
                    &metrics,
                    ServeOptions::default(),
                    &draining,
                )
            })
        };
        let mut stream = TcpStream::connect(address).unwrap();
        stream.write_all(b"{\"op\": \"shutdown\"}\n").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reply = String::new();
        BufReader::new(&mut stream).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"draining\": true"), "{reply}");
        drop(stream);
        // The accept loop observes the drain flag and returns instead of
        // serving forever.
        server
            .join()
            .expect("listener thread panicked")
            .expect("graceful listener shutdown is not an error");
    }

    #[test]
    fn saturating_the_pool_never_deadlocks() {
        // More simultaneous requests than in-flight slots and worker threads:
        // the reader blocks on backpressure, the jobs multiplex over one
        // shared pool, and every request is still answered, in order.
        let engine = engine();
        let metrics = Arc::new(ServeMetrics::default());
        let options = ServeOptions {
            max_in_flight: 2,
            timeout: Duration::from_secs(60),
            read_timeout: None,
        };
        let request = concat!(
            r#"{"op": "coverage", "test": "March ABL1", "list": "2"}"#,
            "\n"
        );
        let script = request.repeat(12);
        let lines = serve_script(&engine, &metrics, &options, &script);
        assert_eq!(lines.len(), 12);
        for (index, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"seq\": {index}, \"ok\": true")));
        }
        assert_eq!(engine.store().enumerations(), 1);
        assert_eq!(engine.cache_hits(), 11);
    }
}

/// Schedule-exploration model tests of the serve loop, compiled only under
/// `--cfg interleave` (see `sram_sim::models` for the pattern). Run with:
///
/// ```text
/// RUSTFLAGS="--cfg interleave" cargo test -p march-codex-cli --lib models::
/// ```
#[cfg(all(test, interleave))]
mod models {
    use super::*;
    use interleave::{check, Config};
    use sram_sim::ExecPolicy;

    /// In-order emission under timeout races: with a deadline short enough
    /// that the scheduler can fire it at any point, every explored schedule
    /// must still emit exactly one response per request, in request order —
    /// each slot answered either by its own result or by a substituted
    /// `timeout` error, never reordered, dropped or duplicated.
    ///
    /// `stats`-only scripts on a single-threaded engine keep the protocol
    /// surface under test exactly the serve loop's own machinery: the
    /// rendezvous job channel, the worker/collector channels, and the
    /// deadline bookkeeping.
    #[test]
    fn responses_stay_in_order_under_timeout_races() {
        let config = Config {
            max_schedules: 6000,
            preemption_bound: Some(1),
            random_schedules: 250,
            ..Config::default()
        };
        let outcome = check(&config, || {
            let engine = SharedEngine::new(ExecPolicy::default().with_threads(1));
            let metrics = Arc::new(ServeMetrics::default());
            let options = ServeOptions {
                max_in_flight: 2,
                // Nominal only: the virtual clock lets the scheduler fire or
                // hold this deadline at will, so both outcomes are explored.
                timeout: Duration::from_millis(5),
                read_timeout: None,
            };
            let script = "{\"op\": \"stats\"}\n{\"op\": \"stats\"}\n";
            let mut output = Vec::new();
            serve_lines(script.as_bytes(), &mut output, &engine, &metrics, &options)
                .expect("in-memory serve cannot fail on I/O");
            let transcript = String::from_utf8(output).expect("responses are UTF-8");
            let lines: Vec<&str> = transcript.lines().collect();
            assert_eq!(lines.len(), 2, "dropped or duplicated a response");
            for (seq, line) in lines.iter().enumerate() {
                assert!(
                    line.starts_with(&format!("{{\"seq\": {seq}, ")),
                    "response out of order at slot {seq}: {line}"
                );
                assert!(
                    line.contains("\"ok\": true") || line.contains("\"kind\": \"timeout\""),
                    "slot {seq} answered with neither a result nor a timeout: {line}"
                );
            }
        });
        assert!(outcome.schedules > 1, "no schedule diversity explored");
    }
}
