//! Command implementations of the `march-codex` binary.

use std::error::Error;
use std::fmt;

use march_gen::{GeneratorConfig, MarchGenerator, SessionExt};
use march_test::{catalog, AddressOrder, MarchTest};
use sram_fault_model::{FaultList, FaultPrimitive, Ffm};
use sram_sim::{
    ArtifactStore, BackendKind, CampaignConfig, CoverageConfig, ExecPolicy, FaultSimulator,
    InitialState, InjectedFault, JsonObject, LaneWidth, Report, Session, SharedEngine,
    SnapshotStore, Syndrome,
};

use crate::args::{usage, Command, CoverageTarget, FaultDomain, ParseArgsError};

/// Errors produced by the command-line front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The arguments could not be parsed.
    Arguments(String),
    /// A referenced march test does not exist in the catalogue.
    UnknownTest(String),
    /// A fault primitive notation does not match any realistic primitive.
    UnknownFault(String),
    /// A simulation could not be configured (bad addresses, memory size, …).
    Simulation(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Arguments(message) => write!(f, "{message}"),
            CliError::UnknownTest(name) => {
                write!(f, "unknown march test `{name}` (see `march-codex catalog`)")
            }
            CliError::UnknownFault(notation) => write!(
                f,
                "`{notation}` does not match any realistic static fault primitive"
            ),
            CliError::Simulation(message) => write!(f, "{message}"),
        }
    }
}

impl Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(error: ParseArgsError) -> Self {
        CliError::Arguments(error.to_string())
    }
}

/// Executes a parsed command and returns the text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; the caller is expected to print
/// it to stderr and exit non-zero.
pub fn run(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage()),
        Command::Catalog => Ok(render_catalog()),
        Command::Show { name } => {
            let test = lookup(name)?;
            Ok(format!("{test}\ncomplexity: {}\n", test.complexity_label()))
        }
        Command::Generate {
            list,
            faults,
            cells,
            no_removal,
            order,
            name,
            exhaustive,
            backend,
            threads,
            batch,
            lane_width,
            json,
        } => generate(
            resolve_list(*list, *faults)?,
            *cells,
            *no_removal,
            *order,
            name.as_deref(),
            *exhaustive,
            ExecPolicy::default()
                .with_backend(*backend)
                .with_threads(*threads)
                .with_batch(*batch)
                .with_lane_width(*lane_width),
            *json,
        ),
        Command::Coverage {
            test,
            list,
            faults,
            cells,
            exhaustive,
            sample,
            seed,
            confidence,
            backend,
            threads,
            lane_width,
            json,
        } => match sample {
            Some(draws) => campaign(
                test,
                resolve_list(*list, *faults)?,
                *cells,
                *draws,
                *seed,
                *confidence,
                *backend,
                *threads,
                *lane_width,
                *json,
            ),
            None => coverage(
                test,
                resolve_list(*list, *faults)?,
                *cells,
                *exhaustive,
                *backend,
                *threads,
                *lane_width,
                *json,
            ),
        },
        Command::Minimise {
            test,
            list,
            faults,
            cells,
            backend,
            threads,
            lane_width,
            json,
        } => minimise(
            test,
            resolve_list(*list, *faults)?,
            *cells,
            ExecPolicy::default()
                .with_backend(*backend)
                .with_threads(*threads)
                .with_lane_width(*lane_width),
            *json,
        ),
        Command::Diagnose {
            test,
            fault,
            victim,
            aggressor,
            cells,
            list,
            backend,
            threads,
            lane_width,
            json,
        } => diagnose(
            test,
            fault,
            *victim,
            *aggressor,
            *cells,
            *list,
            ExecPolicy::default()
                .with_backend(*backend)
                .with_threads(*threads)
                .with_lane_width(*lane_width),
            *json,
        ),
        Command::Simulate {
            test,
            fault,
            victim,
            aggressor,
            cells,
        } => simulate(test, fault, *victim, *aggressor, *cells),
        Command::Serve {
            backend,
            threads,
            lane_width,
            max_in_flight,
            timeout_ms,
            read_timeout_ms,
            snapshot_dir,
            tcp,
        } => {
            // The serve engine sits on the process-wide store, so repeated
            // serve invocations in one process (and every client of one
            // invocation) share the same warm cache.
            let store = ArtifactStore::global();
            if let Some(dir) = snapshot_dir {
                // Attaching is write-once per process; a second serve in the
                // same process keeps the first snapshot layer (the cache is
                // shared anyway), so a failed attach is not an error.
                let _ = store.attach_snapshots(SnapshotStore::open(dir));
            }
            let engine = SharedEngine::with_store(
                ExecPolicy::default()
                    .with_backend(*backend)
                    .with_threads(*threads)
                    .with_lane_width(*lane_width),
                store,
            );
            let options = crate::serve::ServeOptions {
                max_in_flight: *max_in_flight,
                timeout: std::time::Duration::from_millis(*timeout_ms),
                read_timeout: read_timeout_ms.map(std::time::Duration::from_millis),
            };
            crate::serve::run_serve(&engine, options, tcp.as_deref())
                .map_err(|error| CliError::Simulation(format!("serve: {error}")))?;
            Ok(String::new())
        }
        Command::Snapshot {
            dir,
            warm,
            list,
            faults,
            test,
            cells,
        } => snapshot(dir, *warm, *list, *faults, test.as_deref(), *cells),
    }
}

/// The `snapshot` subcommand: pre-warms a snapshot directory (with `--warm`)
/// and reports its contents — names, sizes, kinds and integrity of every
/// file, so operators can audit what a `serve --snapshot-dir` will replay.
fn snapshot(
    dir: &str,
    warm: bool,
    list: Option<CoverageTarget>,
    faults: FaultDomain,
    test: Option<&str>,
    cells: Option<usize>,
) -> Result<String, CliError> {
    let snapshots = SnapshotStore::open(dir);
    let mut output = String::new();
    if warm {
        let list = resolve_list(list, faults)?;
        // A private store keeps the warm run isolated from the process-wide
        // cache: everything it builds lands in the snapshot directory.
        let artifacts = std::sync::Arc::new(ArtifactStore::new());
        artifacts.attach_snapshots(std::sync::Arc::clone(&snapshots));
        let engine = SharedEngine::with_store(ExecPolicy::default(), artifacts);
        let mut session = engine.session();
        if let Some(cells) = cells {
            session = session.with_memory_cells(cells);
        }
        validate_scope(&session, &list)?;
        if let Some(test) = test {
            let test = lookup(test)?;
            // Building the dictionary is the warming side effect; the handle
            // itself is not needed here.
            let _ = session.dictionary(&test, &list);
        }
        let stats = snapshots.stats();
        output.push_str(&format!(
            "warmed        : {} new snapshot(s), {} replayed from disk\n",
            stats.writes, stats.hits
        ));
        if stats.degraded {
            output.push_str("warning       : directory is unwritable; nothing was persisted\n");
        }
    }
    output.push_str(&format!("snapshot dir  : {dir}\n"));
    let files = snapshots.inspect();
    if files.is_empty() {
        output.push_str("(no snapshot files)\n");
    }
    for file in &files {
        output.push_str(&format!(
            "  {:<28} {:>8} bytes  {:<10} {}\n",
            file.name, file.bytes, file.kind, file.status
        ));
    }
    output.push_str(&format!("total         : {} file(s)\n", files.len()));
    Ok(output)
}

fn render_catalog() -> String {
    let mut output = format!("{:<16} {:>6}  notation\n", "name", "length");
    for test in catalog::all() {
        output.push_str(&format!(
            "{:<16} {:>6}  {}\n",
            test.name(),
            test.complexity_label(),
            test.notation()
        ));
    }
    output
}

pub(crate) fn lookup(name: &str) -> Result<MarchTest, CliError> {
    catalog::by_name(name).ok_or_else(|| CliError::UnknownTest(name.to_string()))
}

fn fault_list(target: CoverageTarget) -> FaultList {
    match target {
        CoverageTarget::List1 => FaultList::list_1(),
        CoverageTarget::List2 => FaultList::list_2(),
        CoverageTarget::Unlinked => FaultList::unlinked_static(),
    }
}

/// The fault list of a `--list`/`--faults` pair: the selected cell-array list,
/// the decoder-only list, or the selected list extended with the decoder
/// classes. The parser guarantees `list` is present exactly when the domain
/// needs it (and absent under `--faults af`, which would otherwise drop it).
pub(crate) fn resolve_list(
    target: Option<CoverageTarget>,
    faults: FaultDomain,
) -> Result<FaultList, CliError> {
    match faults {
        FaultDomain::Af => Ok(FaultList::address_decoder()),
        FaultDomain::Ffm | FaultDomain::All => {
            let base = fault_list(target.ok_or_else(|| {
                CliError::Arguments("a fault list is required outside --faults af".to_string())
            })?);
            Ok(match faults {
                FaultDomain::All => base.with_address_decoder_faults(),
                _ => base,
            })
        }
    }
}

/// Pre-validates that `session`'s scope can host `list`'s placements, turning
/// the would-be panic of the infallible generation/minimisation paths into
/// the same typed error `coverage` reports. The enumeration lands in the
/// session's artifact cache, so the later pipeline run pays nothing extra.
pub(crate) fn validate_scope(session: &Session, list: &FaultList) -> Result<(), CliError> {
    session
        .target_lanes(list)
        .map(|_| ())
        .map_err(|error| CliError::Simulation(error.to_string()))
}

fn coverage_config(
    exhaustive: bool,
    backend: BackendKind,
    threads: usize,
    lane_width: LaneWidth,
) -> CoverageConfig {
    let config = if exhaustive {
        CoverageConfig::exhaustive()
    } else {
        CoverageConfig::thorough()
    };
    config
        .with_backend(backend)
        .with_threads(threads)
        .with_lane_width(lane_width)
}

#[allow(clippy::fn_params_excessive_bools, clippy::too_many_arguments)]
fn generate(
    list: FaultList,
    cells: Option<usize>,
    no_removal: bool,
    order: Option<AddressOrder>,
    name: Option<&str>,
    exhaustive: bool,
    policy: ExecPolicy,
    json: bool,
) -> Result<String, CliError> {
    let mut config = if no_removal {
        GeneratorConfig::without_redundancy_removal()
    } else {
        GeneratorConfig::default()
    };
    if let Some(order) = order {
        config.allowed_orders = vec![order, AddressOrder::Any];
    }
    if let Some(cells) = cells {
        config.memory_cells = cells;
    }
    config = config.with_exec(policy);

    // One session serves the whole invocation: generation, redundancy removal
    // and the final verification all share its policy and worker pool.
    let session = config.session();
    validate_scope(&session, &list)?;
    let generator = MarchGenerator::with_config(list.clone(), config)
        .named(name.unwrap_or("March GEN").to_string());
    let generated = generator.generate_with(&session);
    let report = if exhaustive {
        // Exhaustive verification changes the simulation scope, not the
        // policy — but it must still honour an explicit --cells.
        let mut verification =
            coverage_config(true, policy.backend, policy.threads, policy.lane_width);
        if let Some(cells) = cells {
            verification.memory_cells = cells;
        }
        Session::from_coverage_config(&verification)
            .try_coverage(generated.test(), &list)
            .map_err(|error| CliError::Simulation(error.to_string()))?
    } else {
        session.coverage(generated.test(), &list)
    };

    if json {
        return Ok(format!(
            "{}\n",
            JsonObject::new()
                .raw("generation", generated.to_json())
                .raw("verification", report.to_json())
                .raw("session", session_stats(&session))
                .build()
        ));
    }

    let mut output = String::new();
    output.push_str(&format!("target        : {list}\n"));
    let threads_label = if policy.threads == 0 {
        "auto threads".to_string()
    } else {
        format!("{} threads", policy.threads)
    };
    output.push_str(&format!(
        "backend       : {} ({threads_label})\n",
        policy.backend
    ));
    output.push_str(&format!("generated     : {}\n", generated.test()));
    output.push_str(&format!(
        "complexity    : {}\n",
        generated.test().complexity_label()
    ));
    output.push_str(&format!("generation    : {}\n", generated.report()));
    output.push_str(&format!("verification  : {report}\n"));
    if !report.is_complete() {
        for escape in report.escapes().iter().take(5) {
            output.push_str(&format!("  escape: {escape}\n"));
        }
    }
    Ok(output)
}

/// The session's observability counters as a JSON fragment: how many worker
/// threads were spawned for the whole invocation and how often the
/// target-lane artifact cache answered a query without re-enumerating.
fn session_stats(session: &Session) -> String {
    JsonObject::new()
        .number("workers_spawned", session.workers_spawned() as u64)
        .number("jobs_executed", session.jobs_executed() as u64)
        .number("cache_hits", session.cache_hits() as u64)
        .number("cached_artifacts", session.cached_artifacts() as u64)
        .number("cached_dictionaries", session.cached_dictionaries() as u64)
        .build()
}

/// Runs the suffix-only redundancy-removal pass on a catalogue test and
/// reports the shortened test — the CLI surface of
/// [`SessionExt::minimise`].
fn minimise(
    test: &str,
    list: FaultList,
    cells: Option<usize>,
    policy: ExecPolicy,
    json: bool,
) -> Result<String, CliError> {
    let test = lookup(test)?;
    let mut session = Session::new(policy);
    if let Some(cells) = cells {
        session = session.with_memory_cells(cells);
    }
    validate_scope(&session, &list)?;
    let report = session.minimise(&test, &list);

    if json {
        return Ok(format!(
            "{}\n",
            JsonObject::new()
                .raw("minimisation", report.to_json())
                .raw("session", session_stats(&session))
                .build()
        ));
    }

    let mut output = String::new();
    output.push_str(&format!("input         : {test}\n"));
    output.push_str(&format!("target        : {list}\n"));
    output.push_str(&format!("minimised     : {}\n", report.test()));
    output.push_str(&format!(
        "complexity    : {} -> {}\n",
        test.complexity_label(),
        report.test().complexity_label()
    ));
    output.push_str(&format!(
        "removed       : {} operations\n",
        report.removed_operations()
    ));
    Ok(output)
}

#[allow(clippy::too_many_arguments)]
fn coverage(
    test: &str,
    list: FaultList,
    cells: Option<usize>,
    exhaustive: bool,
    backend: BackendKind,
    threads: usize,
    lane_width: LaneWidth,
    json: bool,
) -> Result<String, CliError> {
    let test = lookup(test)?;
    let mut config = coverage_config(exhaustive, backend, threads, lane_width);
    if let Some(cells) = cells {
        config.memory_cells = cells;
    }
    let session = Session::from_coverage_config(&config);
    // The fallible form surfaces undersized memories (e.g. `--cells 2`) as a
    // typed report error instead of a panic.
    let report = session
        .try_coverage(&test, &list)
        .map_err(|error| CliError::Simulation(error.to_string()))?;
    if json {
        return Ok(format!("{}\n", report.to_json()));
    }
    let mut output = format!("{report} [{backend} backend]\n");
    for (topology, (covered, total)) in report.by_topology() {
        output.push_str(&format!("  {topology}: {covered}/{total}\n"));
    }
    if !report.is_complete() {
        output.push_str(&format!(
            "escapes ({} shown of {}):\n",
            report.escapes().len().min(10),
            report.escapes().len()
        ));
        for escape in report.escapes().iter().take(10) {
            output.push_str(&format!("  {escape}\n"));
        }
    }
    Ok(output)
}

/// The Monte-Carlo leg of the `coverage` subcommand: `--sample N` draws a
/// seeded campaign over the exhaustive `(placement, background)` space
/// instead of enumerating it.
#[allow(clippy::too_many_arguments)]
fn campaign(
    test: &str,
    list: FaultList,
    cells: Option<usize>,
    draws: u64,
    seed: u64,
    confidence: f64,
    backend: BackendKind,
    threads: usize,
    lane_width: LaneWidth,
    json: bool,
) -> Result<String, CliError> {
    let test = lookup(test)?;
    // Campaigns always draw from the exhaustive placement space, so the
    // session scope mirrors `--exhaustive` (both uniform backgrounds): a
    // full-space `--sample` then reproduces the exhaustive verdict exactly.
    let mut config = coverage_config(true, backend, threads, lane_width);
    if let Some(cells) = cells {
        config.memory_cells = cells;
    }
    let session = Session::from_coverage_config(&config);
    let campaign = CampaignConfig::default()
        .with_draws(draws)
        .with_seed(seed)
        .with_confidence(confidence);
    let report = session
        .try_campaign(&test, &list, &campaign)
        .map_err(|error| CliError::Simulation(error.to_string()))?;
    if json {
        return Ok(format!("{}\n", report.to_json()));
    }
    let mut output = format!("{report} [{backend} backend]\n");
    output.push_str(&format!(
        "  replay: --sample {} --seed {}{}\n",
        report.draws(),
        report.seed(),
        if report.without_replacement() {
            " (covers the full space, without replacement)"
        } else {
            ""
        }
    ));
    if !report.trace().is_empty() {
        output.push_str(&format!(
            "escape trace ({} shown{}):\n",
            report.trace().len(),
            if report.trace_truncated() {
                ", truncated"
            } else {
                ""
            }
        ));
        for line in report.detail_lines() {
            output.push_str(&format!("  {line}\n"));
        }
    }
    Ok(output)
}

/// Simulates a device carrying the given fault, observes its syndrome under
/// `test` and sweeps `list` for every candidate instance reproducing it — all
/// through one session.
#[allow(clippy::too_many_arguments)]
fn diagnose(
    test: &str,
    fault: &str,
    victim: usize,
    aggressor: Option<usize>,
    cells: usize,
    target: CoverageTarget,
    policy: ExecPolicy,
    json: bool,
) -> Result<String, CliError> {
    let test = lookup(test)?;
    let list = fault_list(target);
    let primitive = find_primitive(fault)?;
    let injected = build_injection(&primitive, victim, aggressor, cells)?;

    let session = Session::new(policy).with_memory_cells(cells);
    validate_scope(&session, &list)?;
    let syndrome = session
        .observe(&test, &injected)
        .map_err(|error| CliError::Simulation(error.to_string()))?;
    let report = session.diagnose_sweep(&test, &syndrome, &list);

    if json {
        return Ok(format!("{}\n", report.to_json()));
    }

    let mut output = String::new();
    output.push_str(&format!("device fault  : {primitive} (victim {victim}"));
    if let Some(aggressor) = aggressor {
        output.push_str(&format!(", aggressor {aggressor}"));
    }
    output.push_str(&format!(") on a {cells}-cell memory\n"));
    output.push_str(&format!("syndrome      : {syndrome}\n"));
    output.push_str(&format!("searched space: {list}\n"));
    output.push_str(&format!("diagnosis     : {}\n", report.summary()));
    for line in report.detail_lines().iter().take(15) {
        output.push_str(&format!("  candidate: {line}\n"));
    }
    if report.is_unexplained() {
        output.push_str("no single fault of the searched space explains the syndrome\n");
    }
    Ok(output)
}

/// Builds the fault injection shared by `simulate` and `diagnose`.
pub(crate) fn build_injection(
    primitive: &FaultPrimitive,
    victim: usize,
    aggressor: Option<usize>,
    cells: usize,
) -> Result<InjectedFault, CliError> {
    if primitive.is_coupling() {
        let aggressor = aggressor.ok_or_else(|| {
            CliError::Simulation("coupling primitives require --aggressor".to_string())
        })?;
        InjectedFault::coupling(primitive.clone(), aggressor, victim, cells)
    } else {
        InjectedFault::single_cell(primitive.clone(), victim, cells)
    }
    .map_err(|error| CliError::Simulation(error.to_string()))
}

pub(crate) fn find_primitive(notation: &str) -> Result<FaultPrimitive, CliError> {
    Ffm::all_fault_primitives()
        .into_iter()
        .find(|fp| fp.notation() == notation.trim())
        .ok_or_else(|| CliError::UnknownFault(notation.to_string()))
}

fn simulate(
    test: &str,
    fault: &str,
    victim: usize,
    aggressor: Option<usize>,
    cells: usize,
) -> Result<String, CliError> {
    let test = lookup(test)?;
    let primitive = find_primitive(fault)?;
    let injected = build_injection(&primitive, victim, aggressor, cells)?;

    let mut output = String::new();
    for background in [InitialState::AllZero, InitialState::AllOne] {
        let mut simulator = FaultSimulator::new(cells, &background)
            .map_err(|error| CliError::Simulation(error.to_string()))?;
        simulator.inject(injected.clone());
        let syndrome = Syndrome::observe(&test, &mut simulator);
        output.push_str(&format!("background {background:?}: {syndrome}\n"));
        for entry in syndrome.entries().take(10) {
            output.push_str(&format!("  {entry}\n"));
        }
    }
    output.push_str(&format!("injected fault: {primitive} (victim {victim}"));
    if let Some(aggressor) = aggressor {
        output.push_str(&format!(", aggressor {aggressor}"));
    }
    output.push_str(&format!(
        ") on a {cells}-cell memory under {}\n",
        test.name()
    ));
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_from_args;

    #[test]
    fn catalog_and_show() {
        let catalog_output = run(&Command::Catalog).unwrap();
        assert!(catalog_output.contains("March SL"));
        assert!(catalog_output.contains("41n"));

        let show = run(&Command::Show {
            name: "march abl1".into(),
        })
        .unwrap();
        assert!(show.contains("9n"));
        assert!(run(&Command::Show {
            name: "no such test".into()
        })
        .is_err());
    }

    #[test]
    fn coverage_command_reports_percentages() {
        let output = run(&Command::Coverage {
            test: "March ABL1".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Scalar,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(output.contains("100.0%"));
        assert!(output.contains("LF1"));
    }

    #[test]
    fn coverage_command_agrees_across_backends() {
        let scalar = run(&Command::Coverage {
            test: "March C-".into(),
            list: Some(CoverageTarget::List1),
            faults: FaultDomain::Ffm,
            cells: None,
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Scalar,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        let packed = run(&Command::Coverage {
            test: "March C-".into(),
            list: Some(CoverageTarget::List1),
            faults: FaultDomain::Ffm,
            cells: None,
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 0,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        // Identical up to the backend tag on the first line.
        let strip = |text: &str| {
            text.replacen(" [scalar backend]", "", 1)
                .replacen(" [packed backend]", "", 1)
        };
        assert_eq!(strip(&scalar), strip(&packed));
    }

    #[test]
    fn coverage_sample_runs_a_campaign() {
        let base = Command::Coverage {
            test: "March C-".into(),
            list: Some(CoverageTarget::List1),
            faults: FaultDomain::Ffm,
            cells: None,
            exhaustive: false,
            sample: Some(256),
            seed: 9,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: true,
        };
        let output = run(&base).unwrap();
        assert!(output.starts_with("{\"report\": \"campaign\""));
        assert!(output.contains("\"seed\": 9"));
        assert!(output.contains("\"confidence\": 0.950"));
        // Identical seeds replay byte-identically on another backend and
        // thread count.
        let mut replay = base.clone();
        if let Command::Coverage {
            threads, backend, ..
        } = &mut replay
        {
            *threads = 0;
            *backend = BackendKind::Scalar;
        }
        assert_eq!(output, run(&replay).unwrap());
        // The text form carries the interval and the replay recipe.
        let mut text = base;
        if let Command::Coverage { json, .. } = &mut text {
            *json = false;
        }
        let rendered = run(&text).unwrap();
        assert!(rendered.contains("CI ["));
        assert!(rendered.contains("replay: --sample 256 --seed 9"));
    }

    #[test]
    fn generate_command_produces_a_complete_test() {
        let output = run(&Command::Generate {
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            no_removal: false,
            order: None,
            name: Some("March CLI".into()),
            exhaustive: false,
            backend: BackendKind::Packed,
            threads: 0,
            batch: 0,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(output.contains("March CLI"));
        assert!(output.contains("100.0%"));
        assert!(output.contains("packed"));
    }

    #[test]
    fn minimise_command_shortens_a_padded_catalogue_test() {
        // March SL is heavily redundant against the single-cell list #2.
        let output = run(&Command::Minimise {
            test: "March SL".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(output.contains("removed"));
        assert!(output.contains("41n ->"));

        let json = run(&Command::Minimise {
            test: "March SL".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            backend: BackendKind::Packed,
            threads: 0,
            lane_width: LaneWidth::Auto,
            json: true,
        })
        .unwrap();
        assert!(json.starts_with("{\"minimisation\": {\"report\": \"minimisation\""));
        assert!(json.contains("\"removed_operations\": "));
        assert!(json.contains("\"cache_hits\": "));
        assert!(run(&Command::Minimise {
            test: "no such test".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .is_err());
    }

    #[test]
    fn simulate_command_prints_a_syndrome() {
        let output = run(&Command::Simulate {
            test: "March SS".into(),
            fault: "<0w1;0/1/->".into(),
            victim: 5,
            aggressor: Some(2),
            cells: 8,
        })
        .unwrap();
        assert!(output.contains("failing reads"));
        assert!(run(&Command::Simulate {
            test: "March SS".into(),
            fault: "<0w1;0/1/->".into(),
            victim: 5,
            aggressor: None,
            cells: 8,
        })
        .is_err());
        assert!(run(&Command::Simulate {
            test: "March SS".into(),
            fault: "<bogus>".into(),
            victim: 5,
            aggressor: None,
            cells: 8,
        })
        .is_err());
    }

    #[test]
    fn diagnose_command_recovers_the_injected_fault() {
        let output = run(&Command::Diagnose {
            test: "March SS".into(),
            fault: "<0w1;0/1/->".into(),
            victim: 4,
            aggressor: Some(1),
            cells: 6,
            list: CoverageTarget::Unlinked,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(output.contains("syndrome"));
        assert!(output.contains("candidates explain"));
        assert!(output.contains("candidate: "));
        assert!(run(&Command::Diagnose {
            test: "March SS".into(),
            fault: "<bogus>".into(),
            victim: 4,
            aggressor: None,
            cells: 6,
            list: CoverageTarget::Unlinked,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .is_err());
    }

    #[test]
    fn json_flag_emits_machine_readable_reports() {
        let coverage = run(&Command::Coverage {
            test: "March ABL1".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: true,
        })
        .unwrap();
        assert!(coverage.starts_with("{\"report\": \"coverage\""));
        assert!(coverage.contains("\"complete\": true"));

        let generate = run(&Command::Generate {
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: None,
            no_removal: false,
            order: None,
            name: Some("March JSON".into()),
            exhaustive: false,
            backend: BackendKind::Packed,
            threads: 1,
            batch: 0,
            lane_width: LaneWidth::Auto,
            json: true,
        })
        .unwrap();
        assert!(generate.starts_with("{\"generation\": {\"report\": \"generation\""));
        assert!(generate.contains("\"verification\": {\"report\": \"coverage\""));
        assert!(generate.contains("March JSON"));

        let diagnose = run(&Command::Diagnose {
            test: "March SS".into(),
            fault: "<0w1;0/1/->".into(),
            victim: 4,
            aggressor: Some(1),
            cells: 6,
            list: CoverageTarget::Unlinked,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: true,
        })
        .unwrap();
        assert!(diagnose.starts_with("{\"report\": \"diagnosis\""));
        assert!(diagnose.contains("\"candidates\": ["));
    }

    #[test]
    fn coverage_over_the_decoder_domain() {
        let output = run(&Command::Coverage {
            test: "March SS".into(),
            list: None,
            faults: FaultDomain::Af,
            cells: Some(64),
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(output.contains("Address-decoder faults"));
        assert!(output.contains("100.0%"));

        // The combined domain extends the list with the decoder classes.
        let combined = run(&Command::Coverage {
            test: "March SS".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::All,
            cells: None,
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap();
        assert!(combined.contains("+ AF"));
        assert!(combined.contains("37"));
    }

    #[test]
    fn undersized_memories_surface_a_typed_error() {
        let error = run(&Command::Coverage {
            test: "March SS".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: Some(2),
            exhaustive: false,
            sample: None,
            seed: 0,
            confidence: 0.95,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap_err();
        assert!(matches!(error, CliError::Simulation(_)));
        assert!(error.to_string().contains("too small"));

        // generate and minimise report the same typed error, not a panic.
        let error = run(&Command::Generate {
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: Some(2),
            no_removal: false,
            order: None,
            name: None,
            exhaustive: false,
            backend: BackendKind::Packed,
            threads: 1,
            batch: 0,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap_err();
        assert!(matches!(error, CliError::Simulation(_)));
        assert!(error.to_string().contains("too small"));

        let error = run(&Command::Minimise {
            test: "March SL".into(),
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            cells: Some(2),
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap_err();
        assert!(matches!(error, CliError::Simulation(_)));
        assert!(error.to_string().contains("too small"));

        let error = run(&Command::Diagnose {
            test: "MATS+".into(),
            fault: "<1/0/->".into(),
            victim: 1,
            aggressor: None,
            cells: 2,
            list: CoverageTarget::List2,
            backend: BackendKind::Packed,
            threads: 1,
            lane_width: LaneWidth::Auto,
            json: false,
        })
        .unwrap_err();
        assert!(matches!(error, CliError::Simulation(_)));
        assert!(error.to_string().contains("too small"));
    }

    #[test]
    fn snapshot_command_warms_and_inspects_a_directory() {
        let dir = std::env::temp_dir().join(format!(
            "march-codex-snapshot-cli-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let dir = dir.to_string_lossy().to_string();
        let warmed = run(&Command::Snapshot {
            dir: dir.clone(),
            warm: true,
            list: Some(CoverageTarget::List2),
            faults: FaultDomain::Ffm,
            test: Some("March SS".into()),
            cells: Some(8),
        })
        .unwrap();
        assert!(warmed.contains("warmed"), "{warmed}");
        assert!(warmed.contains("2 new snapshot(s)"), "{warmed}");
        assert!(warmed.contains("lanes"), "{warmed}");
        assert!(warmed.contains("dictionary"), "{warmed}");
        assert!(warmed.contains("2 file(s)"), "{warmed}");

        // Inspect-only over the same directory sees the persisted files.
        let inspected = run(&Command::Snapshot {
            dir: dir.clone(),
            warm: false,
            list: None,
            faults: FaultDomain::Ffm,
            test: None,
            cells: None,
        })
        .unwrap();
        assert!(inspected.contains("2 file(s)"), "{inspected}");
        assert!(inspected.contains("ok"), "{inspected}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_argument_handling() {
        let output = run_from_args(["show", "MATS+"]).unwrap();
        assert!(output.contains("5n"));
        let err = run_from_args(["bogus"]).unwrap_err();
        assert!(matches!(err, CliError::Arguments(_)));
        let help = run_from_args(Vec::<String>::new()).unwrap();
        assert!(help.contains("USAGE"));
    }
}
