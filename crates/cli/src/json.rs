//! A minimal dependency-free JSON reader for the `serve` request protocol.
//!
//! The crate's *output* JSON comes from [`sram_sim::JsonObject`]; this module
//! is the matching *input* side — just enough of RFC 8259 to parse one
//! newline-delimited request object per line. Strict where it matters
//! (strings, escapes, nesting, trailing garbage), tolerant of insignificant
//! whitespace.

use std::fmt;
use std::iter::Peekable;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the protocol only uses small integers).
    Number(f64),
    /// A string literal with escapes resolved.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order (the protocol never relies on duplicates).
    Object(Vec<(String, JsonValue)>),
}

/// A JSON syntax error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first offending token.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut chars = text.chars().peekable();
        let value = parse_value(&mut chars, 0)?;
        skip_whitespace(&mut chars);
        if chars.next().is_some() {
            return Err(JsonError("trailing characters after JSON value".into()));
        }
        Ok(value)
    }

    /// The value of `key` when `self` is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string content when `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(text) => Some(text),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Number(number)
                if *number >= 0.0 && number.fract() == 0.0 && *number <= 2f64.powi(53) =>
            {
                Some(*number as usize)
            }
            _ => None,
        }
    }

    /// The value as a non-negative `u64`, when it is one exactly.
    ///
    /// Numbers beyond 2^53 are refused outright: past that point f64 cannot
    /// represent every integer, so an `as` cast could silently land on a
    /// neighbouring value. The protocol's counts all fit comfortably below.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            JsonValue::Number(number)
                if *number >= 0.0 && number.fract() == 0.0 && *number <= 2f64.powi(53) =>
            {
                Some(*number as u64)
            }
            _ => None,
        }
    }

    /// The value as a finite `f64`. `1e999` parses to infinity under RFC 8259
    /// grammar; this accessor is where such values are rejected instead of
    /// flowing on into arithmetic.
    #[must_use]
    pub fn as_finite_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(number) if number.is_finite() => Some(*number),
            _ => None,
        }
    }

    /// The boolean content when `self` is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(flag) => Some(*flag),
            _ => None,
        }
    }
}

/// Objects and arrays deeper than this are rejected instead of risking a
/// stack overflow on adversarial input.
const MAX_DEPTH: usize = 64;

fn skip_whitespace(chars: &mut Peekable<Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

fn expect_literal(
    chars: &mut Peekable<Chars<'_>>,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    for expected in literal.chars() {
        if chars.next() != Some(expected) {
            return Err(JsonError(format!("invalid literal (expected `{literal}`)")));
        }
    }
    Ok(value)
}

fn parse_value(chars: &mut Peekable<Chars<'_>>, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError("JSON nesting too deep".into()));
    }
    skip_whitespace(chars);
    match chars.peek() {
        Some('n') => expect_literal(chars, "null", JsonValue::Null),
        Some('t') => expect_literal(chars, "true", JsonValue::Bool(true)),
        Some('f') => expect_literal(chars, "false", JsonValue::Bool(false)),
        Some('"') => parse_string(chars).map(JsonValue::Str),
        Some('[') => parse_array(chars, depth),
        Some('{') => parse_object(chars, depth),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(chars),
        Some(c) => Err(JsonError(format!("unexpected character `{c}`"))),
        None => Err(JsonError("unexpected end of input".into())),
    }
}

fn parse_string(chars: &mut Peekable<Chars<'_>>) -> Result<String, JsonError> {
    chars.next(); // consume the opening quote
    let mut text = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(text),
            Some('\\') => match chars.next() {
                Some('"') => text.push('"'),
                Some('\\') => text.push('\\'),
                Some('/') => text.push('/'),
                Some('b') => text.push('\u{0008}'),
                Some('f') => text.push('\u{000C}'),
                Some('n') => text.push('\n'),
                Some('r') => text.push('\r'),
                Some('t') => text.push('\t'),
                Some('u') => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| JsonError("invalid \\u escape".into()))?;
                        code = code * 16 + digit;
                    }
                    // Surrogate pairs are outside the protocol's needs; map
                    // them (and only them) to the replacement character.
                    text.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                _ => return Err(JsonError("invalid escape sequence".into())),
            },
            Some(c) if (c as u32) < 0x20 => {
                return Err(JsonError("unescaped control character in string".into()))
            }
            Some(c) => text.push(c),
            None => return Err(JsonError("unterminated string".into())),
        }
    }
}

fn parse_number(chars: &mut Peekable<Chars<'_>>) -> Result<JsonValue, JsonError> {
    let mut text = String::new();
    while let Some(c) = chars.peek() {
        if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
            text.push(*c);
            chars.next();
        } else {
            break;
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| JsonError(format!("invalid number `{text}`")))
}

fn parse_array(chars: &mut Peekable<Chars<'_>>, depth: usize) -> Result<JsonValue, JsonError> {
    chars.next(); // consume `[`
    let mut items = Vec::new();
    skip_whitespace(chars);
    if chars.peek() == Some(&']') {
        chars.next();
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(chars, depth + 1)?);
        skip_whitespace(chars);
        match chars.next() {
            Some(',') => {}
            Some(']') => return Ok(JsonValue::Array(items)),
            _ => return Err(JsonError("expected `,` or `]` in array".into())),
        }
    }
}

fn parse_object(chars: &mut Peekable<Chars<'_>>, depth: usize) -> Result<JsonValue, JsonError> {
    chars.next(); // consume `{`
    let mut fields = Vec::new();
    skip_whitespace(chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_whitespace(chars);
        if chars.peek() != Some(&'"') {
            return Err(JsonError("expected string key in object".into()));
        }
        let key = parse_string(chars)?;
        skip_whitespace(chars);
        if chars.next() != Some(':') {
            return Err(JsonError("expected `:` after object key".into()));
        }
        fields.push((key, parse_value(chars, depth + 1)?));
        skip_whitespace(chars);
        match chars.next() {
            Some(',') => {}
            Some('}') => return Ok(JsonValue::Object(fields)),
            _ => return Err(JsonError("expected `,` or `}` in object".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let request = JsonValue::parse(
            r#"{"op": "coverage", "test": "March SS", "list": "2", "cells": 8, "json": true}"#,
        )
        .unwrap();
        assert_eq!(
            request.get("op").and_then(JsonValue::as_str),
            Some("coverage")
        );
        assert_eq!(request.get("cells").and_then(JsonValue::as_usize), Some(8));
        assert_eq!(request.get("json").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(request.get("missing"), None);
    }

    #[test]
    fn round_trips_the_crate_output_format() {
        // The serve responses embed sram_sim::JsonObject output; our reader
        // must accept everything the writer emits, including escapes.
        let written = sram_sim::JsonObject::new()
            .string("name", "March \"quoted\"\n")
            .number("count", 42)
            .float("ratio", 0.5)
            .boolean("complete", true)
            .strings("items", ["a".to_string(), "b".to_string()])
            .build();
        let parsed = JsonValue::parse(&written).unwrap();
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("March \"quoted\"\n")
        );
        assert_eq!(parsed.get("count").and_then(JsonValue::as_usize), Some(42));
        assert_eq!(
            parsed.get("complete").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(
            parsed.get("items"),
            Some(&JsonValue::Array(vec![
                JsonValue::Str("a".into()),
                JsonValue::Str("b".into())
            ]))
        );
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("-2.5e2").unwrap(),
            JsonValue::Number(-250.0)
        );
        assert_eq!(
            JsonValue::parse(r#""A\t""#).unwrap(),
            JsonValue::Str("A\t".into())
        );
        assert_eq!(
            JsonValue::parse("[1, [2], {}]").unwrap(),
            JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Array(vec![JsonValue::Number(2.0)]),
                JsonValue::Object(vec![]),
            ])
        );
        // Numbers that are not exact non-negative integers refuse as_usize.
        assert_eq!(JsonValue::parse("1.5").unwrap().as_usize(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn integer_and_float_accessors_refuse_out_of_range_numbers() {
        // Exact integers flow through as_u64...
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("1e6").unwrap().as_u64(), Some(1_000_000));
        // ...but fractions, negatives, overflow past 2^53 and the infinities
        // that `1e999` parses to are all refused — no silent `as` truncation.
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1e300").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("1e999").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("true").unwrap().as_u64(), None);
        // as_finite_f64 accepts any finite number and nothing else.
        assert_eq!(
            JsonValue::parse("0.95").unwrap().as_finite_f64(),
            Some(0.95)
        );
        assert_eq!(
            JsonValue::parse("-2.5e2").unwrap().as_finite_f64(),
            Some(-250.0)
        );
        assert_eq!(JsonValue::parse("1e999").unwrap().as_finite_f64(), None);
        assert_eq!(JsonValue::parse("-1e999").unwrap().as_finite_f64(), None);
        assert_eq!(JsonValue::parse("\"0.5\"").unwrap().as_finite_f64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "\"unterminated",
            "nul",
            "{\"a\": 1} trailing",
            "\"bad \\x escape\"",
            "{1: 2}",
            "--5",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "`{bad}` should fail");
        }
        // Pathological nesting is bounded, not a stack overflow.
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err());
    }
}
