//! The `march-codex` command-line tool.

use std::process::ExitCode;

fn main() -> ExitCode {
    match march_codex_cli::run_from_args(std::env::args().skip(1)) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
