//! Façade crate for the march-codex workspace.
//!
//! Re-exports the five member crates so the top-level integration tests and
//! examples (and downstream users who want a single dependency) can reach the
//! whole reproduction through one crate:
//!
//! * [`sram_fault_model`] — static fault primitives, linked faults, fault lists;
//! * [`march_test`] — march notation, element algebra, the published catalogue;
//! * [`sram_sim`] — the fault simulator (scalar and bit-parallel packed backends);
//! * [`march_gen`] — the simulation-backed greedy march-test generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod testkit;

pub use march_gen;
pub use march_test;
pub use sram_fault_model;
pub use sram_sim;
