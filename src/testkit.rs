//! Cross-backend differential test support: one generic harness asserting the
//! whole pipeline — coverage, generation, minimisation, verification — is
//! **byte-identical** across two execution policies (any combination of
//! backend, thread count, batch size, wave-cost factor and packed lane width:
//! 64, 128 or 256 lanes per word).
//!
//! This module replaces the three near-duplicate equivalence suites that used
//! to live in `sram_sim` and `march_gen` (`session_equivalence` ×2 and
//! `minimise_equivalence`): every "policy A and policy B must agree" property
//! now funnels through [`assert_pipeline_equivalent`], so new pipeline stages
//! (and new fault domains, like the address-decoder classes) get differential
//! coverage by being added here once.
//!
//! The harness is compiled into the façade crate (not behind `cfg(test)`) so
//! the workspace-level integration tests and any downstream consumer can use
//! it; it is `#[doc(hidden)]`-free because "how do I check a new backend is
//! correct" is a legitimate user question.

use march_gen::{minimise_full_resim, minimise_with, GeneratorConfig, SessionExt};
use march_test::{catalog, MarchTest};
use sram_fault_model::FaultList;
use sram_sim::{BackendKind, ExecPolicy, InitialState, PlacementStrategy, Session};

/// The catalogue probe tests every equivalence run measures coverage under:
/// two strong tests (complete over most lists), one weak one (plenty of
/// escapes, so escape ordering is exercised) and one mid-strength classic.
fn probe_tests() -> Vec<MarchTest> {
    vec![
        catalog::march_ss(),
        catalog::march_sl(),
        catalog::mats_plus(),
        catalog::march_c_minus(),
    ]
}

/// The minimisation inputs, spanning the interesting shapes the removal pass
/// branches on: a padded near-minimal test (a few accepted removals), a
/// heavily redundant catalogue test (many accepted removals and long suffix
/// replays), and a weak test that is incomplete over most lists (the pass
/// must bail out untouched through the completeness precheck).
fn minimisation_probes() -> Vec<MarchTest> {
    vec![
        MarchTest::parse(
            "padded ABL1",
            "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
        )
        .expect("valid notation"),
        catalog::march_sl(),
        catalog::mats_plus(),
    ]
}

/// A session over `policy` scoped to `cells` with the paper's thorough
/// backgrounds and the given placement strategy.
fn session(policy: ExecPolicy, cells: usize, strategy: PlacementStrategy) -> Session {
    Session::new(policy)
        .with_memory_cells(cells)
        .with_strategy(strategy)
        .with_backgrounds(vec![InitialState::AllZero, InitialState::AllOne])
}

/// Asserts the **whole pipeline is byte-identical** under `policy_a` and
/// `policy_b` for `fault_list` on a `cells`-cell memory:
///
/// * `Session::coverage` / `Session::verify` reports are `==` (counts,
///   per-topology break-down *and* the stable-sorted escape list) for every
///   probe test, under representative placements — and under exhaustive
///   placements too when `cells ≤ 8`;
/// * `Session::generate` produces the same march-test notation, greedy
///   iteration count and completeness verdict;
/// * `Session::minimise` produces the same minimised notation and removal
///   count, and both agree with the legacy full re-simulation oracle
///   ([`march_gen::minimise_full_resim`]) evaluated under `policy_a`.
///
/// Works for any fault-list contents — FFM-only, address-decoder-only, or
/// mixed — which is exactly how the workspace equivalence tests drive it.
///
/// # Panics
///
/// Panics (with a policy-labelled message) on the first divergence, or if
/// `cells` cannot host the list's placements.
pub fn assert_pipeline_equivalent(
    policy_a: ExecPolicy,
    policy_b: ExecPolicy,
    fault_list: &FaultList,
    cells: usize,
) {
    let label = |what: &str| {
        format!(
            "{what} diverged: {policy_a:?} vs {policy_b:?} ({cells} cells, {})",
            fault_list.name()
        )
    };

    // Coverage and verification, representative scope (+ exhaustive on small
    // memories, where all-pairs placement enumeration stays tractable).
    let mut strategies = vec![PlacementStrategy::Representative];
    if cells <= 8 {
        strategies.push(PlacementStrategy::Exhaustive);
    }
    for strategy in strategies {
        let session_a = session(policy_a, cells, strategy);
        let session_b = session(policy_b, cells, strategy);
        for test in probe_tests() {
            let report_a = session_a
                .try_coverage(&test, fault_list)
                .expect("harness scope hosts the fault-list placements");
            let report_b = session_b
                .try_coverage(&test, fault_list)
                .expect("harness scope hosts the fault-list placements");
            assert_eq!(
                report_a,
                report_b,
                "{} [{} under {:?}]",
                label("coverage"),
                test.name(),
                strategy
            );
            // `verify` is defined as coverage; pin that contract too.
            assert_eq!(
                session_a.verify(&test, fault_list),
                report_a,
                "{} [{}]",
                label("verify"),
                test.name()
            );
        }
    }

    let session_a = session(policy_a, cells, PlacementStrategy::Representative);
    let session_b = session(policy_b, cells, PlacementStrategy::Representative);

    // Generation: the greedy search must make identical choices.
    let generated_a = session_a.generate(fault_list);
    let generated_b = session_b.generate(fault_list);
    assert_eq!(
        generated_a.test().notation(),
        generated_b.test().notation(),
        "{}",
        label("generated test")
    );
    assert_eq!(
        generated_a.report().iterations(),
        generated_b.report().iterations(),
        "{}",
        label("greedy iteration count")
    );
    assert_eq!(
        generated_a.report().is_complete(),
        generated_b.report().is_complete(),
        "{}",
        label("generation completeness")
    );

    // Minimisation: policy-invariant for every probe shape (accepted
    // removals, heavy redundancy, incomplete-input bail-out), and equal to
    // the full re-simulation oracle (every trial re-verified from scratch)
    // under policy_a.
    let oracle_config = GeneratorConfig {
        memory_cells: cells,
        exec: policy_a,
        ..GeneratorConfig::default()
    };
    for probe in minimisation_probes() {
        let minimised_a = session_a.minimise(&probe, fault_list);
        let minimised_b = session_b.minimise(&probe, fault_list);
        assert_eq!(
            minimised_a.test().notation(),
            minimised_b.test().notation(),
            "{} [{}]",
            label("minimised test"),
            probe.name()
        );
        assert_eq!(
            minimised_a.removed_operations(),
            minimised_b.removed_operations(),
            "{} [{}]",
            label("removal count"),
            probe.name()
        );
        let (oracle_test, oracle_removed) =
            minimise_full_resim(&session_a, &probe, fault_list, &oracle_config);
        let (suffix_test, suffix_removed) =
            minimise_with(&session_a, &probe, fault_list, &oracle_config);
        assert_eq!(
            suffix_test.notation(),
            oracle_test.notation(),
            "{} [{}]",
            label("suffix-only vs full-resim minimisation"),
            probe.name()
        );
        assert_eq!(
            suffix_removed,
            oracle_removed,
            "{} [{}]",
            label("oracle removal count"),
            probe.name()
        );
        assert_eq!(
            minimised_a.test().notation(),
            oracle_test.notation(),
            "{} [{}]",
            label("session minimisation vs oracle"),
            probe.name()
        );
    }
}

/// Asserts a **full-space Monte-Carlo campaign is verdict-identical to
/// exhaustive enumeration** under `policy`: a campaign whose draw budget
/// covers the whole `(target, placement, background)` space degenerates to
/// sampling without replacement in lane order, so
///
/// * it must report exactly as many detected lanes as enumeration covers,
/// * the set of escaping targets must match the exhaustive escape list, and
/// * the **first** traced escape of each target must equal the exhaustive
///   report's escape for that target (same placement, same background) —
///   the strongest obtainable statement, since enumeration records only the
///   first failing lane per target.
///
/// Every probe test of the differential harness is swept, so complete and
/// incomplete (escape-carrying) verdicts are both exercised.
///
/// # Panics
///
/// Panics on the first divergence, or if `cells` cannot host the list's
/// placements.
pub fn assert_campaign_matches_exhaustive(
    policy: ExecPolicy,
    fault_list: &FaultList,
    cells: usize,
) {
    use sram_sim::{CampaignConfig, Escape, MAX_CAMPAIGN_DRAWS};
    use std::collections::BTreeMap;

    // The campaign always samples the exhaustive space; give the session the
    // matching strategy so `try_coverage` enumerates the identical lanes.
    let session = session(policy, cells, PlacementStrategy::Exhaustive);
    let config = CampaignConfig::default()
        .with_draws(MAX_CAMPAIGN_DRAWS)
        .with_max_escapes(usize::MAX);
    for test in probe_tests() {
        let exhaustive = session
            .try_coverage(&test, fault_list)
            .expect("harness scope hosts the fault-list placements");
        let campaign = session
            .try_campaign(&test, fault_list, &config)
            .expect("harness scope hosts the fault-list placements");
        let label = |what: &str| {
            format!(
                "{what} diverged: campaign vs exhaustive ({policy:?}, {cells} cells, {}, {})",
                fault_list.name(),
                test.name()
            )
        };
        assert!(
            campaign.without_replacement(),
            "{}",
            label("a full-space budget must sample without replacement")
        );
        assert_eq!(
            campaign.draws(),
            campaign.space(),
            "{}",
            label("draw count")
        );
        // Per-target first escapes, in draw order (= lane order here).
        let mut first_escapes: BTreeMap<String, &Escape> = BTreeMap::new();
        for traced in campaign.trace() {
            first_escapes
                .entry(traced.escape.target.to_string())
                .or_insert(&traced.escape);
        }
        assert_eq!(
            first_escapes.len(),
            exhaustive.total() - exhaustive.covered(),
            "{}",
            label("escaping-target count")
        );
        for escape in exhaustive.escapes() {
            let traced = first_escapes
                .get(&escape.target.to_string())
                .unwrap_or_else(|| panic!("{} [{}]", label("missing escape"), escape.target));
            assert_eq!(*traced, escape, "{}", label("first escape per target"));
        }
    }
}

/// The serial scalar reference policy every equivalence sweep anchors to: the
/// original dual-memory engine, one lane and one thread at a time.
#[must_use]
pub fn reference_policy() -> ExecPolicy {
    ExecPolicy::default()
        .with_backend(BackendKind::Scalar)
        .with_threads(1)
        .with_batch(1)
}

/// Asserts crash-safe snapshot persistence is **observationally
/// transparent**: the same pipeline queries (coverage plus dictionary-backed
/// diagnosis) answered by
///
/// 1. a cold engine with no snapshot layer at all,
/// 2. an engine *writing* snapshots to a fresh in-memory device, and
/// 3. a post-"restart" engine *replaying* those snapshots from the same
///    device into an empty artifact store
///
/// produce byte-identical report JSON — and the replaying engine really did
/// answer from the snapshot layer (at least one hit, nothing quarantined).
///
/// # Panics
///
/// Panics on the first report divergence, if `cells` cannot host the list's
/// placements, or if the replay engine never touched the snapshot layer.
pub fn assert_snapshot_transparent(policy: ExecPolicy, fault_list: &FaultList, cells: usize) {
    use sram_fault_model::Ffm;
    use sram_sim::{ArtifactStore, InjectedFault, MemIo, Report, SharedEngine, SnapshotStore};
    use std::sync::Arc;

    let test = catalog::march_ss();
    let primitive = Ffm::all_fault_primitives()
        .into_iter()
        .find(|fp| !fp.is_coupling())
        .expect("the FFM space has single-cell primitives");
    let injected = InjectedFault::single_cell(primitive, cells - 1, cells)
        .expect("the victim address is in scope");

    let transcript = |engine: &Arc<SharedEngine>| -> Vec<String> {
        let session = engine.session().with_memory_cells(cells);
        let coverage = session
            .try_coverage(&test, fault_list)
            .expect("harness scope hosts the fault-list placements")
            .to_json();
        let syndrome = session
            .observe(&test, &injected)
            .expect("harness scope hosts the injected fault");
        let dictionary = session.dictionary(&test, fault_list);
        let diagnosis = session.diagnose(&syndrome, &dictionary).to_json();
        vec![coverage, diagnosis]
    };

    let cold = transcript(&SharedEngine::new(policy));

    let device: Arc<MemIo> = Arc::new(MemIo::new());
    let writer_store = Arc::new(ArtifactStore::new());
    writer_store.attach_snapshots(SnapshotStore::with_io(device.clone(), "snaps"));
    let written = transcript(&SharedEngine::with_store(policy, writer_store));

    // "Restart": an empty artifact store over the same snapshot device.
    let replay_snapshots = SnapshotStore::with_io(device, "snaps");
    let replay_store = Arc::new(ArtifactStore::new());
    replay_store.attach_snapshots(Arc::clone(&replay_snapshots));
    let replayed = transcript(&SharedEngine::with_store(policy, replay_store));

    assert_eq!(
        cold,
        written,
        "writing snapshots changed a report ({policy:?}, {cells} cells, {})",
        fault_list.name()
    );
    assert_eq!(
        cold,
        replayed,
        "replaying snapshots changed a report ({policy:?}, {cells} cells, {})",
        fault_list.name()
    );
    let stats = replay_snapshots.stats();
    assert!(
        stats.hits >= 1,
        "the replay engine never answered from the snapshot layer: {stats:?}"
    );
    assert_eq!(stats.quarantined, 0, "a pristine snapshot was quarantined");
}
