//! Multi-client stress tests of the shared engine: many threads hammering one
//! [`ArtifactStore`] with identical and disjoint keys must produce
//! byte-identical reports vs the serial path, enumerate each unique key
//! exactly once, and never deadlock under pool saturation — the guarantees
//! `march-codex serve` builds its multiplexing on.

use std::io::BufRead;
use std::sync::Arc;
use std::thread;

use march_codex_cli::{serve_lines, ServeMetrics, ServeOptions};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{ExecPolicy, Report, Session, SharedEngine};

/// 8 clients × 4 repeats on one key: one enumeration, everything else hits,
/// every report byte-identical to a fresh serial session.
#[test]
fn identical_keys_enumerate_once_across_clients() {
    const CLIENTS: usize = 8;
    const REPEATS: usize = 4;
    let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
    let test = catalog::march_sl();
    let list = FaultList::list_2();
    let serial = Session::new(ExecPolicy::default())
        .coverage(&test, &list)
        .to_json();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let test = test.clone();
                let list = list.clone();
                scope.spawn(move || {
                    (0..REPEATS)
                        .map(|_| engine.session().coverage(&test, &list).to_json())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for report in handle.join().expect("client thread") {
                assert_eq!(report, serial);
            }
        }
    });

    // Exactly one enumeration however many clients raced on the key...
    assert_eq!(engine.store().enumerations(), 1);
    assert_eq!(engine.cached_artifacts(), 1);
    // ...and every other query was a hit.
    assert_eq!(engine.cache_hits(), CLIENTS * REPEATS - 1);
    // All clients multiplexed over the single resident pool.
    assert_eq!(engine.workers_spawned(), 1);
    assert_eq!(engine.jobs_executed(), CLIENTS * REPEATS);
}

/// Concurrent clients on disjoint keys (different tests × lists × scopes):
/// per-key build locks must not serialise unrelated keys into each other or
/// double-build any of them.
#[test]
fn disjoint_keys_build_independently() {
    let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
    let workloads: Vec<(march_test::MarchTest, FaultList, usize)> = vec![
        (catalog::march_ss(), FaultList::list_2(), 8),
        (catalog::march_sl(), FaultList::list_2(), 8),
        (catalog::march_ss(), FaultList::unlinked_static(), 8),
        (catalog::march_c_minus(), FaultList::list_1(), 8),
        (catalog::march_ss(), FaultList::list_2(), 6),
        (catalog::mats_plus(), FaultList::unlinked_static(), 6),
    ];
    // Unique artifact keys = unique (list, cells) scopes; several workloads
    // share one (the test is not part of the artifact key).
    let unique_keys = 5;

    let serial: Vec<String> = workloads
        .iter()
        .map(|(test, list, cells)| {
            Session::new(ExecPolicy::default())
                .with_memory_cells(*cells)
                .coverage(test, list)
                .to_json()
        })
        .collect();

    thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|(test, list, cells)| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    engine
                        .session()
                        .with_memory_cells(*cells)
                        .coverage(test, list)
                        .to_json()
                })
            })
            .collect();
        for (handle, expected) in handles.into_iter().zip(&serial) {
            assert_eq!(&handle.join().expect("client thread"), expected);
        }
    });

    assert_eq!(engine.store().enumerations(), unique_keys);
    assert_eq!(engine.cached_artifacts(), unique_keys);
    assert_eq!(
        engine.cache_hits(),
        workloads.len() - unique_keys,
        "only the scope-sharing workloads may hit"
    );
}

/// More clients than in-flight slots than pool workers, mixed hot and cold
/// keys: everything completes (no deadlock between the per-key build locks,
/// the job queue and the shared worker pool) with correct reports.
#[test]
fn pool_saturation_never_deadlocks() {
    const CLIENTS: usize = 16;
    let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
    let list = FaultList::list_2();
    let tests = [
        catalog::march_ss(),
        catalog::march_sl(),
        catalog::march_abl1(),
    ];
    let serial: Vec<String> = tests
        .iter()
        .map(|test| {
            Session::new(ExecPolicy::default())
                .coverage(test, &list)
                .to_json()
        })
        .collect();

    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let engine = Arc::clone(&engine);
                let test = tests[client % tests.len()].clone();
                let list = list.clone();
                scope.spawn(move || engine.session().coverage(&test, &list).to_json())
            })
            .collect();
        for (client, handle) in handles.into_iter().enumerate() {
            assert_eq!(
                handle.join().expect("client thread"),
                serial[client % serial.len()]
            );
        }
    });

    // All three tests share one fault-list scope: one enumeration total.
    assert_eq!(engine.store().enumerations(), 1);
    assert_eq!(engine.cache_hits(), CLIENTS - 1);
    assert_eq!(engine.workers_spawned(), 1);
}

/// The serve loop end-to-end over the shared engine: concurrent in-flight
/// requests, responses in request order, repeated requests byte-identical
/// with the cache-hit counter advancing — the contract the CI `service-smoke`
/// leg locks down on the release binary.
#[test]
fn serve_loop_matches_serial_reports() {
    let engine = SharedEngine::new(ExecPolicy::default().with_threads(2));
    let metrics = Arc::new(ServeMetrics::default());
    let request = concat!(
        r#"{"op": "coverage", "test": "March SS", "list": "unlinked"}"#,
        "\n"
    );
    let script = request.repeat(6);
    let mut output = Vec::new();
    serve_lines(
        script.as_bytes(),
        &mut output,
        &engine,
        &metrics,
        &ServeOptions::default(),
    )
    .expect("serve loop");

    let serial = Session::new(ExecPolicy::default())
        .coverage(&catalog::march_ss(), &FaultList::unlinked_static())
        .to_json();
    let lines: Vec<String> = output
        .lines()
        .map(|line| line.expect("utf8 line"))
        .collect();
    assert_eq!(lines.len(), 6);
    for (seq, line) in lines.iter().enumerate() {
        assert_eq!(
            line,
            &format!(
                "{{\"seq\": {seq}, \"ok\": true, \"op\": \"coverage\", \"report\": {serial}}}"
            )
        );
    }
    assert_eq!(engine.store().enumerations(), 1);
    assert_eq!(engine.cache_hits(), 5);
}
