//! Cross-crate integration tests: fault model → march notation → pattern graph →
//! simulator → generator, exercised together.

use march_gen::{MemoryGraph, PatternGraph, SequenceOfOperations};
use march_test::{AddressOrder, MarchTest};
use sram_fault_model::{
    AddressedFaultPrimitive, Bit, FaultList, FaultListBuilder, Ffm, LinkTopology, LinkedAfp,
    LinkedFault, Operation, Placement, TestPattern,
};
use sram_sim::{
    measure_coverage, run_march, CoverageConfig, FaultSimulator, InitialState, InstanceCells,
    LinkedFaultInstance,
};

fn cfds(notation: &str) -> sram_fault_model::FaultPrimitive {
    Ffm::DisturbCoupling
        .fault_primitives()
        .into_iter()
        .find(|fp| fp.notation() == notation)
        .expect("realistic CFds primitive")
}

#[test]
fn paper_running_example_from_notation_to_detection() {
    // Section 3 of the paper: <0w1;0/1/-> → <0w1;1/0/-> as AFPs on a 3-cell memory.
    let fp1 = cfds("<0w1;0/1/->");
    let fp2 = cfds("<0w1;1/0/->");

    let afp1 =
        AddressedFaultPrimitive::instantiate(&fp1, Placement::coupling(0, 2, 3).unwrap()).unwrap();
    let afp2 =
        AddressedFaultPrimitive::instantiate(&fp2, Placement::coupling(1, 2, 3).unwrap()).unwrap();
    let linked_afp = LinkedAfp::try_link(afp1.clone(), afp2).unwrap();
    assert_eq!(linked_afp.victim(), 2);

    // The same pair as an (abstract) linked fault, injected into the simulator.
    let linked = LinkedFault::link(fp1, fp2, LinkTopology::Lf3).unwrap();
    let instance =
        LinkedFaultInstance::new(linked.clone(), InstanceCells::triple(0, 1, 2), 4).unwrap();

    // A march test that sensitizes FP1 and FP2 back to back without reading in
    // between does NOT detect the fault (masking)…
    let masked = MarchTest::parse("masking", "⇕(w0); ⇑(w1); ⇕(r0)").unwrap();
    let mut simulator = FaultSimulator::new(4, &InitialState::AllZero).unwrap();
    simulator.inject_linked(&instance);
    assert!(!run_march(&masked, &mut simulator).detected());

    // …while a test whose descending element sensitizes FP1 on the lowest aggressor
    // last (so FP2 cannot re-mask it) and then reads the victim does detect it.
    let detecting = MarchTest::parse("detecting", "⇕(w0); ⇓(r0,w1,r1,w0); ⇕(r0)").unwrap();
    let mut simulator = FaultSimulator::new(4, &InitialState::AllZero).unwrap();
    simulator.inject_linked(&instance);
    assert!(run_march(&detecting, &mut simulator).detected());
}

#[test]
fn masked_test_pattern_has_matching_faulty_edges() {
    // The pattern-graph view of the same example: both components appear as faulty
    // edges, linked via the partner field.
    let lf = LinkedFault::link(
        cfds("<0w1;0/1/->"),
        cfds("<1w0;1/0/->"),
        LinkTopology::Lf2SharedAggressor,
    )
    .unwrap();
    let list = FaultListBuilder::new("pair").linked(lf).build().unwrap();
    let pg = PatternGraph::from_fault_list(&list).unwrap();
    let first = &pg.faulty_edges()[0];
    let second = &pg.faulty_edges()[first.partner.unwrap()];
    // FP2 starts exactly in the state FP1 leaves behind (Definition 7: I2 = Fv1).
    assert_eq!(second.from, first.to);
    assert_eq!(second.to, first.from);
}

#[test]
fn sequence_of_operations_detects_its_target_when_marched() {
    // Build an SO on cell j (the highest address of the 2-cell model), translate it
    // into a march element and check it detects a disturb coupling fault whose
    // aggressor sits above its victim.
    let so =
        SequenceOfOperations::with_operations(1, vec![Operation::R0, Operation::W1, Operation::R1]);
    let element = so.to_march_element(2).unwrap();
    assert_eq!(element.order(), AddressOrder::Descending);

    let test = MarchTest::new(
        "so test",
        vec![march_test::MarchElement::initialise(Bit::Zero), element],
    )
    .unwrap();

    let fp = cfds("<0w1;0/1/->");
    let mut simulator = FaultSimulator::new(6, &InitialState::AllOne).unwrap();
    simulator.inject(sram_sim::InjectedFault::coupling(fp, 4, 1, 6).unwrap());
    assert!(run_march(&test, &mut simulator).detected());
}

#[test]
fn memory_graph_agrees_with_the_simulator_on_fault_free_behaviour() {
    // Walk a random-ish operation sequence on both the explicit state graph and the
    // simulator's golden memory; they must stay in lock-step.
    let graph = MemoryGraph::new(3).unwrap();
    let mut state = 0usize;
    let mut simulator = FaultSimulator::new(3, &InitialState::AllZero).unwrap();
    let script = [
        (0, Operation::W1),
        (2, Operation::W1),
        (1, Operation::R0),
        (0, Operation::W0),
        (2, Operation::R1),
        (1, Operation::W1),
        (0, Operation::Read(None)),
    ];
    for (cell, operation) in script {
        let (next, output) = graph.successor(state, cell, operation);
        let outcome = simulator.apply(cell, operation);
        assert_eq!(outcome.expected, output);
        state = next;
        let golden: Vec<Bit> = simulator.golden_memory().as_slice().to_vec();
        assert_eq!(graph.state_of(&golden), state);
    }
}

#[test]
fn coverage_of_a_derived_test_pattern_list() {
    // Derive test patterns for every transition fault, then check that the march
    // test assembled from their operations detects them all.
    let mut list = FaultListBuilder::new("transition faults");
    for fp in Ffm::TransitionFault.fault_primitives() {
        list = list.simple(fp);
    }
    let list = list.build().unwrap();

    // Assemble a march test by hand following the TP structure (write, then read).
    let test = MarchTest::parse("tp test", "⇕(w0); ⇑(r0,w1,r1); ⇑(r1,w0,r0)").unwrap();
    let report = measure_coverage(&test, &list, &CoverageConfig::thorough());
    assert!(report.is_complete(), "escapes: {:?}", report.escapes());

    // Sanity-check one TP explicitly.
    let tf = &Ffm::TransitionFault.fault_primitives()[0];
    let afp =
        AddressedFaultPrimitive::instantiate(tf, Placement::single_cell(0, 2).unwrap()).unwrap();
    let tp = TestPattern::new(afp);
    assert_eq!(tp.observe().cell(), 0);
}

#[test]
fn fault_list_statistics_match_between_crates() {
    // The pattern graph, the simulator's instance enumeration and the fault list
    // itself must agree on the number of linked faults.
    let list = FaultList::list_2();
    let pg = PatternGraph::from_fault_list(&list).unwrap();
    // Each LF1 expands its two components over the unconstrained second cell of the
    // 2-cell canonical graph: 2 components × 2 expansions = 4 edges per fault.
    assert_eq!(pg.faulty_edges().len(), 4 * list.linked().len());

    let instances = march_gen::TargetInstance::enumerate(
        &list,
        8,
        sram_sim::PlacementStrategy::Representative,
        &[InitialState::AllOne],
    );
    assert_eq!(instances.len(), list.linked().len());
}
