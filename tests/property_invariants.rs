//! Property-based tests (proptest) over the workspace's core invariants.

use march_gen::SequenceOfOperations;
use march_test::{AddressOrder, MarchElement, MarchTest};
use proptest::prelude::*;
use sram_fault_model::{Bit, FaultList, MemoryState, Operation};
use sram_sim::{run_march, FaultSimulator, InitialState, InjectedFault, LinkedFaultInstance};

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_order() -> impl Strategy<Value = AddressOrder> {
    prop_oneof![
        Just(AddressOrder::Ascending),
        Just(AddressOrder::Descending),
        Just(AddressOrder::Any),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        arbitrary_order(),
        prop::collection::vec(arbitrary_operation(), 1..8),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty by construction"))
}

fn arbitrary_test() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec(arbitrary_element(), 1..6)
        .prop_map(|elements| MarchTest::new("prop", elements).expect("non-empty by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// March notation printing and parsing round-trip.
    #[test]
    fn march_notation_round_trips(test in arbitrary_test()) {
        let notation = test.notation();
        let reparsed = MarchTest::parse("prop", &notation).expect("printed notation parses");
        prop_assert_eq!(reparsed.notation(), notation);
        prop_assert_eq!(reparsed.complexity(), test.complexity());
    }

    /// Complexity is the sum of the element lengths and scales linearly with the
    /// memory size.
    #[test]
    fn complexity_is_additive(test in arbitrary_test(), cells in 1usize..64) {
        let total: usize = test.elements().iter().map(MarchElement::len).sum();
        prop_assert_eq!(test.complexity(), total);
        prop_assert_eq!(test.operation_count(cells), total * cells);
    }

    /// Complementing a march element twice gives the original element back.
    #[test]
    fn complement_is_involutive(element in arbitrary_element()) {
        prop_assert_eq!(element.complemented().complemented(), element);
    }

    /// A fault-free memory never produces a mismatch, for any march test.
    #[test]
    fn fault_free_memory_never_fails(test in arbitrary_test(), cells in 4usize..10) {
        let mut simulator = FaultSimulator::new(cells, &InitialState::Checkerboard)
            .expect("valid memory");
        let run = run_march(&test, &mut simulator);
        prop_assert!(!run.detected());
        prop_assert_eq!(run.operations(), test.complexity() * cells);
    }

    /// The simulator is deterministic: running the same march twice from reset
    /// produces the same outcome.
    #[test]
    fn simulation_is_deterministic(
        test in arbitrary_test(),
        fault_index in 0usize..32,
        victim in 0usize..6,
    ) {
        let list = FaultList::list_2();
        let fault = &list.linked()[fault_index % list.linked().len()];
        let instance = LinkedFaultInstance::new(
            fault.clone(),
            sram_sim::InstanceCells::single(victim),
            6,
        ).expect("valid instance");

        let mut first = FaultSimulator::new(6, &InitialState::AllOne).expect("valid memory");
        first.inject_linked(&instance);
        let mut second = first.clone();

        let run_a = run_march(&test, &mut first);
        let run_b = run_march(&test, &mut second);
        prop_assert_eq!(run_a.detected(), run_b.detected());
        prop_assert_eq!(run_a.mismatches(), run_b.mismatches());
    }

    /// Detection is monotone under appending march elements: adding an element at
    /// the end can only add detections, never remove them.
    #[test]
    fn detection_is_monotone_under_appending(
        test in arbitrary_test(),
        extra in arbitrary_element(),
        fault_index in 0usize..844,
    ) {
        let list = FaultList::list_1();
        let fault = &list.linked()[fault_index % list.linked().len()];
        let cells = match fault.cell_count() {
            1 => sram_sim::InstanceCells::single(2),
            2 => sram_sim::InstanceCells::pair(1, 4),
            _ => sram_sim::InstanceCells::triple(0, 3, 5),
        };
        let instance = LinkedFaultInstance::new(fault.clone(), cells, 6).expect("valid instance");

        let mut simulator = FaultSimulator::new(6, &InitialState::AllZero).expect("valid memory");
        simulator.inject_linked(&instance);
        let mut extended_simulator = simulator.clone();

        let detected_before = run_march(&test, &mut simulator).detected();

        let mut elements = test.elements().to_vec();
        elements.push(extra);
        let extended = MarchTest::new("extended", elements).expect("non-empty");
        let detected_after = run_march(&extended, &mut extended_simulator).detected();

        prop_assert!(!detected_before || detected_after);
    }

    /// Memory-state expansion always produces exactly 2^(don't cares) concrete
    /// states, each of which satisfies the original description.
    #[test]
    fn memory_state_expansion_is_consistent(description in "[01-]{1,6}") {
        let state: MemoryState = description.parse().expect("valid description");
        let dont_cares = description.chars().filter(|c| *c == '-').count();
        let expanded = state.expand();
        prop_assert_eq!(expanded.len(), 1 << dont_cares);
        for bits in expanded {
            prop_assert!(state.matches_bits(&bits));
        }
    }

    /// A valid SO translates into a march element with the same operations and the
    /// address order dictated by its address specification.
    #[test]
    fn so_translation_preserves_operations(
        ops in prop::collection::vec(arbitrary_operation(), 1..6),
        cell in 0usize..3,
    ) {
        let so = SequenceOfOperations::with_operations(cell, ops.clone());
        let element = so.to_march_element(3).expect("non-empty");
        prop_assert_eq!(element.operations(), &ops[..]);
        if cell == 2 {
            prop_assert_eq!(element.order(), AddressOrder::Descending);
        } else {
            prop_assert_eq!(element.order(), AddressOrder::Ascending);
        }
    }

    /// Injecting an unlinked realistic fault primitive never causes March SS to
    /// report a failure on a *different* cell... and more importantly, a march test
    /// on a fault-free memory agrees with the golden model cell by cell at the end.
    #[test]
    fn golden_and_faulty_agree_without_faults(
        test in arbitrary_test(),
        cells in 4usize..9,
    ) {
        let mut simulator = FaultSimulator::new(cells, &InitialState::AllOne).expect("valid");
        let _ = run_march(&test, &mut simulator);
        prop_assert_eq!(
            simulator.faulty_memory().as_slice(),
            simulator.golden_memory().as_slice()
        );
    }

    /// Every single-cell fault primitive of the realistic taxonomy is detected by
    /// March SS regardless of which cell it is injected on.
    #[test]
    fn march_ss_detects_single_cell_faults_anywhere(
        family_index in 0usize..6,
        primitive_index in 0usize..2,
        victim in 0usize..8,
        one_background in any::<bool>(),
    ) {
        let family = sram_fault_model::Ffm::single_cell()[family_index];
        let primitive = family.fault_primitives()[primitive_index].clone();
        let background = if one_background { InitialState::AllOne } else { InitialState::AllZero };
        let mut simulator = FaultSimulator::new(8, &background).expect("valid");
        simulator.inject(InjectedFault::single_cell(primitive, victim, 8).expect("valid"));
        let run = run_march(&march_test::catalog::march_ss(), &mut simulator);
        prop_assert!(run.detected());
    }

    /// Bit and cell-value algebra: double complement is the identity and matching
    /// is consistent with conversion.
    #[test]
    fn bit_algebra(value in any::<bool>()) {
        let bit = Bit::from(value);
        prop_assert_eq!(!!bit, bit);
        prop_assert_eq!(bit.flipped().flipped(), bit);
        let cell = sram_fault_model::CellValue::from(bit);
        prop_assert!(cell.matches(bit));
        prop_assert!(!cell.matches(bit.flipped()));
    }
}
