//! Snapshot persistence must be invisible to every consumer: cold engines,
//! snapshot-writing engines and snapshot-replaying engines (a simulated
//! process restart over the same device) answer byte-identical reports —
//! across backends, thread counts and fault domains. The corruption and
//! fault-injection side of the story lives in
//! `crates/memsim/tests/snapshot_chaos.rs`; this suite pins the happy path
//! that makes a warmed `serve --snapshot-dir` transcript trustworthy.

use march_codex_repro::testkit::{assert_snapshot_transparent, reference_policy};
use sram_fault_model::FaultList;
use sram_sim::{BackendKind, ExecPolicy};

#[test]
fn snapshots_are_transparent_for_the_reference_policy() {
    assert_snapshot_transparent(reference_policy(), &FaultList::list_2(), 8);
}

#[test]
fn snapshots_are_transparent_for_the_packed_threaded_policy() {
    let policy = ExecPolicy::default()
        .with_backend(BackendKind::Packed)
        .with_threads(2);
    assert_snapshot_transparent(policy, &FaultList::list_2(), 8);
}

#[test]
fn snapshots_are_transparent_for_the_decoder_domain() {
    assert_snapshot_transparent(ExecPolicy::default(), &FaultList::address_decoder(), 16);
}

#[test]
fn snapshots_are_transparent_for_the_mixed_domain() {
    assert_snapshot_transparent(
        ExecPolicy::default(),
        &FaultList::list_2().with_address_decoder_faults(),
        8,
    );
}
