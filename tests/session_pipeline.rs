//! Cross-crate integration of the session execution API: the paper's whole
//! pipeline — fault list → greedy generation → verification → redundancy
//! removal → dictionary-based diagnosis — through **one** engine handle, with
//! every stage returning a typed report that serialises to JSON.

use march_codex_repro::march_gen::SessionExt;
use march_codex_repro::march_test::{catalog, MarchTest};
use march_codex_repro::sram_fault_model::{FaultList, Ffm};
use march_codex_repro::sram_sim::{ExecPolicy, InjectedFault, Report, Session, Syndrome};

#[test]
fn the_whole_pipeline_runs_through_one_session() {
    let session = Session::new(ExecPolicy::default().with_threads(2).with_batch(16));
    let spawned = session.workers_spawned();
    let list = FaultList::list_2();

    // 1. Generate a march test for the single-cell static linked faults.
    let generated = session.generate(&list);
    assert!(generated.report().is_complete());
    assert!(generated.test().complexity() <= 11);
    assert!(generated
        .to_json()
        .starts_with("{\"report\": \"generation\""));

    // 2. Verify it with the fault simulator through the same session.
    let coverage = session.verify(generated.test(), &list);
    assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());
    assert!(coverage.to_json().contains("\"complete\": true"));

    // 3. Redundancy removal on a padded catalogue test.
    let padded = MarchTest::parse(
        "padded ABL1",
        "⇕(w0); ⇕(w0,r0,r0,w1); ⇕(w1,r1,r1,w0); ⇕(r0,r0)",
    )
    .unwrap();
    let minimised = session.minimise(&padded, &list);
    assert!(minimised.removed_operations() >= 2);
    assert!(minimised
        .to_json()
        .starts_with("{\"report\": \"minimisation\""));

    // 4. Diagnose a faulty device with a dictionary built by the session.
    let dictionary = session.dictionary(generated.test(), &list);
    let fault_free = session
        .observe(generated.test(), &sample_fault(&session))
        .unwrap();
    let report = session.diagnose(&fault_free, &dictionary);
    assert!(report.to_json().starts_with("{\"report\": \"diagnosis\""));

    // 5. Run a single injected fault end to end.
    let run = session
        .run(&catalog::march_ss(), &sample_fault(&session))
        .unwrap();
    assert!(run.detected());
    assert!(run.to_json().starts_with("{\"report\": \"run\""));

    // Every stage above shared the one worker pool: nothing was respawned.
    assert_eq!(session.workers_spawned(), spawned);
}

fn sample_fault(session: &Session) -> InjectedFault {
    let tf = Ffm::TransitionFault.fault_primitives()[0].clone();
    InjectedFault::single_cell(tf, 3, session.memory_cells()).unwrap()
}

#[test]
fn session_syndromes_match_the_simulator_primitives() {
    let session = Session::default();
    let fault = sample_fault(&session);
    let syndrome = session.observe(&catalog::march_ss(), &fault).unwrap();
    let run = session.run(&catalog::march_ss(), &fault).unwrap();
    assert_eq!(syndrome, Syndrome::from_run(&run));
    assert_eq!(syndrome.len(), run.mismatches());
}
