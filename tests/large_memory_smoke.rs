//! Large-memory smoke tests: 1024-cell coverage and diagnosis through the
//! packed + threaded path — the first workload family where per-candidate
//! scalar simulation is genuinely infeasible.
//!
//! `#[ignore]`d by default (they are release-grade workloads); the release CI
//! job runs them with `cargo test --release -- --ignored` under a wall-clock
//! budget, and each test additionally asserts its own in-process budget so a
//! performance regression fails loudly rather than just slowly.

use std::time::{Duration, Instant};

use march_test::catalog;
use sram_fault_model::{DecoderFault, FaultList};
use sram_sim::{
    CampaignConfig, DecoderFaultInstance, ExecPolicy, FaultSimulator, InitialState, InstanceCells,
    LaneWidth, PlacementStrategy, Session, Syndrome, TargetKind,
};

/// Per-test wall-clock budget. Generous (the measured release times are well
/// under 10 s) so CI jitter cannot flake the job, but tight enough that an
/// accidental fall-back onto an `O(cells²)` path fails the suite.
const BUDGET: Duration = Duration::from_secs(120);

#[test]
#[ignore = "release-grade 1k-cell workload; run with --ignored"]
fn af_coverage_at_1024_cells_packed_threaded() {
    let start = Instant::now();
    let session = Session::new(ExecPolicy::fast()).with_memory_cells(1024);
    let report = session.coverage(&catalog::march_ss(), &FaultList::address_decoder());
    assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    assert_eq!(report.total(), 5);
    assert!(
        start.elapsed() < BUDGET,
        "1024-cell AF coverage blew the budget: {:?}",
        start.elapsed()
    );
}

#[test]
#[ignore = "release-grade 1k-cell workload; run with --ignored"]
fn mixed_af_ffm_coverage_at_1024_cells() {
    let start = Instant::now();
    let session = Session::new(ExecPolicy::fast()).with_memory_cells(1024);
    let list = FaultList::unlinked_static().with_address_decoder_faults();
    let report = session.coverage(&catalog::march_ss(), &list);
    assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    assert_eq!(report.total(), 53);
    assert!(
        start.elapsed() < BUDGET,
        "1024-cell mixed coverage blew the budget: {:?}",
        start.elapsed()
    );
}

#[test]
#[ignore = "release-grade 1k-cell workload; run with --ignored"]
fn af_coverage_at_1024_cells_is_lane_width_invariant() {
    // Exhaustive decoder placements at 1024 cells put tens of thousands of
    // lanes on every target — the workload the 256-lane words exist for. The
    // wide run must be byte-identical to the one-word-per-64-lanes run.
    let start = Instant::now();
    let list = FaultList::address_decoder();
    let scoped = |width: LaneWidth| {
        Session::new(ExecPolicy::fast().with_lane_width(width))
            .with_memory_cells(1024)
            .with_strategy(PlacementStrategy::Exhaustive)
            .coverage(&catalog::march_ss(), &list)
    };
    let narrow = scoped(LaneWidth::W64);
    let wide = scoped(LaneWidth::W256);
    assert_eq!(narrow, wide, "reports diverged between 64 and 256 lanes");
    assert!(wide.is_complete(), "escapes: {:?}", wide.escapes());
    assert!(
        start.elapsed() < BUDGET,
        "1024-cell width-invariance smoke blew the budget: {:?}",
        start.elapsed()
    );
}

#[test]
#[ignore = "release-grade 1M-cell workload; run with --ignored"]
fn af_campaign_at_a_million_cells_stays_in_budget() {
    // The Session-API twin of
    // `coverage --faults af --cells 1048576 --sample 100000 --seed 7`: the
    // exhaustive decoder space at 2^20 cells is far beyond enumeration in a
    // CI leg, but a seeded 100k-draw campaign must finish inside the budget
    // and report a Wilson interval around its estimate.
    let start = Instant::now();
    let session = Session::new(ExecPolicy::fast())
        .with_memory_cells(1 << 20)
        .with_strategy(PlacementStrategy::Exhaustive)
        .with_backgrounds(vec![InitialState::AllZero, InitialState::AllOne]);
    let config = CampaignConfig::default().with_draws(100_000).with_seed(7);
    let report = session
        .try_campaign(&catalog::march_ss(), &FaultList::address_decoder(), &config)
        .expect("the 2^20-cell decoder space hosts the campaign");
    assert_eq!(report.draws(), 100_000);
    assert!(!report.without_replacement(), "the space dwarfs the sample");
    let (low, high) = report.interval();
    assert!(
        (0.0..=report.estimate()).contains(&low) && (report.estimate()..=1.0).contains(&high),
        "the Wilson interval must bracket the estimate: [{low}, {high}]"
    );
    // March SS covers the whole decoder space, so the draws all detect.
    assert_eq!(report.detected(), report.draws());
    assert!(
        start.elapsed() < BUDGET,
        "2^20-cell AF campaign blew the budget: {:?}",
        start.elapsed()
    );
}

#[test]
#[ignore = "release-grade 1k-cell workload; run with --ignored"]
fn af_diagnosis_at_1024_cells_recovers_the_instance() {
    let start = Instant::now();
    let cells = 1024usize;
    // A decoder defect on address line 6: address 700 redirected onto cell
    // 700 ^ 64 = 764.
    let primary = 700usize;
    let partner = primary ^ 64;
    let instance = DecoderFaultInstance::new(
        DecoderFault::NoAddressMaps,
        InstanceCells::pair(partner, primary),
        cells,
    )
    .unwrap();

    let test = catalog::mats_plus();
    let mut device = FaultSimulator::new(cells, &InitialState::AllZero).unwrap();
    device.inject_decoder(instance);
    let syndrome = Syndrome::observe(&test, &mut device);
    assert!(!syndrome.is_empty(), "MATS+ must flag the decoder defect");

    // Sweep the whole decoder fault space (every class × every address-line
    // placement — ~33k instances at 1024 cells) for candidates reproducing
    // the syndrome exactly.
    let session = Session::new(ExecPolicy::fast()).with_memory_cells(cells);
    let report = session.diagnose_sweep(&test, &syndrome, &FaultList::address_decoder());
    assert!(!report.is_unexplained());
    assert!(
        report.candidates().iter().any(|candidate| {
            matches!(
                candidate.target,
                TargetKind::Decoder(DecoderFault::NoAddressMaps)
            ) && candidate.cells.victim == primary
                && candidate.cells.aggressor_first == Some(partner)
        }),
        "the injected instance must be among the candidates: {:?}",
        report.candidates()
    );
    // Localisation: every candidate touches the faulty address pair.
    assert!(report
        .candidates()
        .iter()
        .all(|candidate| candidate.cells.victim == primary
            || candidate.cells.aggressor_first == Some(primary)
            || candidate.cells.victim == partner
            || candidate.cells.aggressor_first == Some(partner)));
    assert!(
        start.elapsed() < BUDGET,
        "1024-cell AF diagnosis blew the budget: {:?}",
        start.elapsed()
    );
}
