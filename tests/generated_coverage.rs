//! End-to-end integration tests: the generator produces complete, verified march
//! tests for the paper's two target fault lists (the §6 validation claim).

use march_gen::{GeneratorConfig, MarchGenerator};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::CoverageConfig;

#[test]
fn fault_list_2_generation_is_complete_and_short() {
    let list = FaultList::list_2();
    let (generated, coverage) = MarchGenerator::new(list.clone())
        .named("March GEN-LF1")
        .generate_verified();

    assert!(
        generated.report().is_complete(),
        "generation left targets uncovered: {:?}",
        generated.report().uncovered()
    );
    assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());

    // Table 1 shape: the generated test must not be longer than the 11n March LF1
    // baseline for the same list.
    assert!(
        generated.test().complexity() <= catalog::march_lf1().complexity(),
        "generated {} vs baseline {}",
        generated.test().complexity(),
        catalog::march_lf1().complexity()
    );
}

#[test]
fn fault_list_2_generation_reported_uncovered_matches_simulation() {
    // The generator's own completeness claim must agree with an independent
    // coverage measurement.
    let list = FaultList::list_2();
    let generated = MarchGenerator::new(list.clone()).generate();
    let report = march_gen::verify(generated.test(), &list, &CoverageConfig::thorough());
    assert_eq!(generated.report().is_complete(), report.is_complete());
}

#[test]
fn generation_without_repair_still_covers_list_2() {
    let config = GeneratorConfig {
        repair: false,
        ..GeneratorConfig::default()
    };
    let generated = MarchGenerator::with_config(FaultList::list_2(), config).generate();
    assert!(generated.report().is_complete());
}

#[test]
fn lf3_subset_generation_is_complete() {
    // The hardest topology class on its own: three-cell linked faults.
    let list = FaultList::list_1().filter_topology(sram_fault_model::LinkTopology::Lf3);
    assert!(!list.is_empty());
    let (generated, coverage) = MarchGenerator::new(list)
        .named("March GEN-LF3")
        .generate_verified();
    assert!(
        generated.report().is_complete(),
        "uncovered: {:?}",
        generated.report().uncovered()
    );
    assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());
    // March SL covers all static linked faults in 41n; a test generated only for
    // the LF3 subset must not be longer than that.
    assert!(generated.test().complexity() <= catalog::march_sl().complexity());
}

#[test]
fn two_cell_subset_generation_is_complete() {
    let full = FaultList::list_1();
    let mut builder = sram_fault_model::FaultListBuilder::new("static LF2 subset");
    for topology in [
        sram_fault_model::LinkTopology::Lf2CouplingThenSingle,
        sram_fault_model::LinkTopology::Lf2SingleThenCoupling,
        sram_fault_model::LinkTopology::Lf2SharedAggressor,
    ] {
        builder = builder.linked_all(
            full.linked()
                .iter()
                .filter(|lf| lf.topology() == topology)
                .cloned(),
        );
    }
    let list = builder.build().expect("LF2 subset is not empty");
    let generated = MarchGenerator::new(list.clone()).generate();
    assert!(
        generated.report().is_complete(),
        "uncovered: {:?}",
        generated.report().uncovered()
    );
    let coverage = march_gen::verify(generated.test(), &list, &CoverageConfig::thorough());
    assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());
}

/// The headline experiment (Table 1 row 1–2): full Fault List #1 generation.
/// Marked `#[ignore]` because it takes tens of seconds; run with
/// `cargo test --release -- --ignored` or via the `table1` benchmark binary.
#[test]
#[ignore = "long-running headline experiment; exercised by the table1 bench binary"]
fn fault_list_1_generation_is_complete_and_beats_the_baselines() {
    let list = FaultList::list_1();
    let (generated, coverage) = MarchGenerator::new(list)
        .named("March GEN-L1")
        .generate_verified();
    assert!(
        generated.report().is_complete(),
        "uncovered: {:?}",
        generated.report().uncovered()
    );
    assert!(coverage.is_complete(), "escapes: {:?}", coverage.escapes());
    assert!(generated.test().complexity() <= catalog::march_sl().complexity());
}
