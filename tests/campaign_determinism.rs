//! Monte-Carlo campaign determinism suite.
//!
//! Three contracts, spanning memsim's sampler and the session's sharded
//! execution path:
//!
//! * **Replay**: the same `--seed` yields a byte-identical [`CampaignReport`]
//!   (including its JSON form and escape trace) across backend × thread
//!   count × lane width — the campaign analogue of the pipeline-equivalence
//!   suite.
//! * **Seed sensitivity**: different seeds draw observably different
//!   sequences; no two nearby seeds alias to the same draw prefix.
//! * **Degeneration**: a draw budget covering the whole space samples
//!   without replacement in lane order and reproduces the exhaustive
//!   enumeration verdict exactly
//!   ([`march_codex_repro::testkit::assert_campaign_matches_exhaustive`]).

use march_codex_repro::testkit::{assert_campaign_matches_exhaustive, reference_policy};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{
    sample_draw_indices, BackendKind, CampaignConfig, ExecPolicy, InitialState, LaneWidth, Report,
    Session,
};

/// The decoder-only, cell-array and mixed fault domains.
fn fault_lists() -> Vec<FaultList> {
    vec![
        FaultList::address_decoder(),
        FaultList::list_2(),
        FaultList::list_2().with_address_decoder_faults(),
    ]
}

/// A policy matrix spanning both backends, serial/pooled/auto threads and
/// every packed lane width.
fn policy_matrix() -> Vec<ExecPolicy> {
    vec![
        reference_policy(),
        ExecPolicy::default(),
        ExecPolicy::default().with_threads(2),
        ExecPolicy::default().with_threads(0),
        ExecPolicy::default()
            .with_backend(BackendKind::Scalar)
            .with_threads(3),
        ExecPolicy::default().with_lane_width(LaneWidth::W64),
        ExecPolicy::default()
            .with_lane_width(LaneWidth::W128)
            .with_threads(2),
        ExecPolicy::default()
            .with_lane_width(LaneWidth::W256)
            .with_threads(0),
    ]
}

fn campaign_session(policy: ExecPolicy, cells: usize) -> Session {
    Session::new(policy)
        .with_memory_cells(cells)
        .with_backgrounds(vec![InitialState::AllZero, InitialState::AllOne])
}

#[test]
fn same_seed_reports_are_byte_identical_across_policies() {
    let list = FaultList::list_2().with_address_decoder_faults();
    let test = catalog::march_c_minus();
    let config = CampaignConfig::default().with_draws(2048).with_seed(42);
    let mut reference = None;
    for policy in policy_matrix() {
        let report = campaign_session(policy, 12)
            .try_campaign(&test, &list, &config)
            .expect("campaign scope hosts the placements");
        let json = report.to_json();
        match &reference {
            None => reference = Some((report, json)),
            Some((expected_report, expected_json)) => {
                assert_eq!(
                    &report, expected_report,
                    "campaign report diverged under {policy:?}"
                );
                assert_eq!(
                    &json, expected_json,
                    "campaign JSON diverged under {policy:?}"
                );
            }
        }
    }
}

#[test]
fn different_seeds_produce_distinct_draw_prefixes() {
    // 16 consecutive seeds over a mid-sized space: every pair of draw-index
    // prefixes must differ — the splitmix64-finalised seeding keeps adjacent
    // seeds from aliasing into overlapping streams.
    const SPACE: u64 = 1 << 20;
    const PREFIX: usize = 32;
    let prefixes: Vec<Vec<u64>> = (0..16u64)
        .map(|seed| {
            let draws = sample_draw_indices(seed, SPACE, 256);
            assert!(draws.iter().all(|&index| index < SPACE));
            draws[..PREFIX].to_vec()
        })
        .collect();
    for (a, prefix_a) in prefixes.iter().enumerate() {
        for (b, prefix_b) in prefixes.iter().enumerate().skip(a + 1) {
            assert_ne!(
                prefix_a, prefix_b,
                "seeds {a} and {b} alias to the same draw prefix"
            );
        }
    }
}

#[test]
fn replaying_a_seed_replays_the_escape_trace() {
    // A weak test with plenty of escapes: the bounded trace itself (draw
    // numbers and decoded lanes) must replay exactly, since `--seed` is the
    // documented reproduction recipe for an escape.
    // Note the budget stays below the space size: a budget covering the
    // whole space degenerates to seed-independent lane order by design.
    let list = FaultList::list_2();
    let test = catalog::mats_plus();
    let config = CampaignConfig::default().with_draws(128).with_seed(7);
    let first = campaign_session(ExecPolicy::default(), 8)
        .try_campaign(&test, &list, &config)
        .expect("campaign scope hosts the placements");
    let replay = campaign_session(ExecPolicy::default().with_threads(2), 8)
        .try_campaign(&test, &list, &config)
        .expect("campaign scope hosts the placements");
    assert!(!first.trace().is_empty(), "MATS+ should leak escapes");
    assert_eq!(first.trace(), replay.trace());
    // And a different seed really does draw a different sample.
    let other = campaign_session(ExecPolicy::default(), 8)
        .try_campaign(
            &test,
            &list,
            &CampaignConfig::default().with_draws(128).with_seed(8),
        )
        .expect("campaign scope hosts the placements");
    assert_ne!(first.trace(), other.trace());
}

#[test]
fn full_space_campaigns_match_exhaustive_enumeration() {
    for list in fault_lists() {
        for policy in [
            reference_policy(),
            ExecPolicy::default().with_threads(2),
            ExecPolicy::default()
                .with_lane_width(LaneWidth::W256)
                .with_threads(0),
        ] {
            assert_campaign_matches_exhaustive(policy, &list, 6);
        }
    }
}
