//! Regression tests pinning the simulated coverage of the published march tests of
//! the catalogue — the cross-checks behind the comparison columns of Table 1.

use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig};

fn thorough() -> CoverageConfig {
    CoverageConfig::thorough()
}

#[test]
fn march_ss_covers_unlinked_but_not_linked_faults() {
    let march_ss = catalog::march_ss();
    let unlinked = measure_coverage(&march_ss, &FaultList::unlinked_static(), &thorough());
    assert!(unlinked.is_complete(), "escapes: {:?}", unlinked.escapes());

    // March SS was designed for unlinked faults; linked faults mask each other and
    // some escape it — this is precisely the motivation of the paper.
    let linked = measure_coverage(&march_ss, &FaultList::list_1(), &thorough());
    assert!(
        !linked.is_complete(),
        "March SS unexpectedly covers all static linked faults"
    );
}

#[test]
fn march_abl1_covers_fault_list_2_with_9n() {
    let report = measure_coverage(&catalog::march_abl1(), &FaultList::list_2(), &thorough());
    assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    assert_eq!(catalog::march_abl1().complexity(), 9);
}

#[test]
fn march_lf1_covers_fault_list_2_with_11n() {
    let report = measure_coverage(&catalog::march_lf1(), &FaultList::list_2(), &thorough());
    assert!(report.is_complete(), "escapes: {:?}", report.escapes());
    assert_eq!(catalog::march_lf1().complexity(), 11);
}

#[test]
fn linked_fault_tests_cover_the_single_cell_linked_faults() {
    for test in [
        catalog::march_sl(),
        catalog::march_abl(),
        catalog::march_rabl(),
    ] {
        let report = measure_coverage(&test, &FaultList::list_2(), &thorough());
        assert!(
            report.is_complete(),
            "{} escapes on list #2: {:?}",
            test.name(),
            report.escapes()
        );
    }
}

#[test]
fn simple_tests_do_not_cover_the_linked_lists() {
    for test in [catalog::mats_plus(), catalog::march_c_minus()] {
        let report = measure_coverage(&test, &FaultList::list_2(), &thorough());
        assert!(
            !report.is_complete(),
            "{} unexpectedly covers the single-cell linked faults",
            test.name()
        );
    }
}

#[test]
fn table_1_complexities_are_pinned() {
    // The comparison columns of Table 1 are derived from these complexities.
    assert_eq!(catalog::test_43n().complexity(), 43);
    assert_eq!(catalog::march_sl().complexity(), 41);
    assert_eq!(catalog::march_abl().complexity(), 37);
    assert_eq!(catalog::march_rabl().complexity(), 35);
    assert_eq!(catalog::march_lf1().complexity(), 11);
    assert_eq!(catalog::march_abl1().complexity(), 9);
}

#[test]
fn coverage_is_monotone_in_placement_strategy() {
    // A test that is complete under exhaustive placements is complete under the
    // representative ones (the representative set is a subset).
    let representative = CoverageConfig {
        memory_cells: 6,
        strategy: sram_sim::PlacementStrategy::Representative,
        backgrounds: thorough().backgrounds,
        ..CoverageConfig::default()
    };
    let exhaustive = CoverageConfig::exhaustive();
    let list = FaultList::list_2();
    let test = catalog::march_abl1();
    let representative_report = measure_coverage(&test, &list, &representative);
    let exhaustive_report = measure_coverage(&test, &list, &exhaustive);
    assert!(representative_report.covered() >= exhaustive_report.covered());
    assert!(exhaustive_report.is_complete());
}
