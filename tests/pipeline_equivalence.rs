//! The cross-backend differential suite: **one harness**
//! ([`march_codex_repro::testkit::assert_pipeline_equivalent`]) asserting
//! coverage / generation / minimisation / verification verdicts are
//! byte-identical across backend × threads × batch × wave-cost × lane-width
//! (64/128/256) × scope, for address-decoder (AF), cell-array (FFM) and mixed
//! fault lists.
//!
//! This replaces the three near-duplicate equivalence suites that previously
//! lived in `crates/memsim/tests/session_equivalence.rs`,
//! `crates/core/tests/session_equivalence.rs` and
//! `crates/core/tests/minimise_equivalence.rs`.

use march_codex_repro::testkit::{assert_pipeline_equivalent, reference_policy};
use march_test::{AddressOrder, MarchElement, MarchTest};
use proptest::prelude::*;
use sram_fault_model::{FaultList, Operation};
use sram_sim::{BackendKind, ExecPolicy, LaneWidth, Session};

/// The three fault domains the tentpole opens: decoder-only, FFM-only and the
/// mixed list carrying both.
fn fault_lists() -> Vec<FaultList> {
    vec![
        FaultList::address_decoder(),
        FaultList::list_2(),
        FaultList::list_2().with_address_decoder_faults(),
    ]
}

fn arbitrary_policy() -> impl Strategy<Value = ExecPolicy> {
    (
        prop_oneof![Just(BackendKind::Scalar), Just(BackendKind::Packed)],
        0usize..4,
        prop_oneof![Just(0usize), Just(1usize), Just(7usize), Just(64usize)],
        prop_oneof![Just(1usize), Just(3usize), Just(10usize)],
        prop::sample::select(LaneWidth::ALL.to_vec()),
    )
        .prop_map(|(backend, threads, batch, factor, lane_width)| {
            ExecPolicy::default()
                .with_backend(backend)
                .with_threads(threads)
                .with_batch(batch)
                .with_wave_cost_factor(factor)
                .with_lane_width(lane_width)
        })
}

/// Deterministic sweep: every fault domain × a policy matrix spanning both
/// backends, serial/pooled threads, full/odd/per-candidate batches, an
/// off-default wave-cost factor and every packed lane width, each anchored to
/// the serial scalar reference.
#[test]
fn af_ffm_and_mixed_lists_are_policy_invariant() {
    let policies = [
        ExecPolicy::default(), // packed, serial, full words, auto width
        ExecPolicy::default().with_threads(2).with_batch(7),
        ExecPolicy::default()
            .with_backend(BackendKind::Scalar)
            .with_threads(3),
        ExecPolicy::fast().with_batch(1).with_wave_cost_factor(10),
        ExecPolicy::default().with_lane_width(LaneWidth::W64),
        ExecPolicy::default()
            .with_lane_width(LaneWidth::W128)
            .with_threads(2),
        ExecPolicy::fast()
            .with_lane_width(LaneWidth::W256)
            .with_batch(7),
    ];
    for list in fault_lists() {
        for policy in policies {
            assert_pipeline_equivalent(reference_policy(), policy, &list, 8);
        }
    }
}

/// The decoder-only domain works on memories too small for linked-fault
/// placements — its pair classes only need 2 cells.
#[test]
fn decoder_only_lists_run_on_tiny_and_odd_sized_memories() {
    let list = FaultList::address_decoder();
    for cells in [4usize, 6, 12] {
        assert_pipeline_equivalent(
            reference_policy(),
            ExecPolicy::fast().with_batch(7),
            &list,
            cells,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random policy pairs stay pipeline-equivalent on every fault domain and
    /// on both a small (exhaustive-scoped) and the default memory.
    #[test]
    fn random_policy_pairs_are_pipeline_equivalent(
        policy_a in arbitrary_policy(),
        policy_b in arbitrary_policy(),
        list_index in 0usize..3,
        small in any::<bool>(),
    ) {
        let list = &fault_lists()[list_index];
        let cells = if small { 6 } else { 8 };
        assert_pipeline_equivalent(policy_a, policy_b, list, cells);
    }
}

// ---------------------------------------------------------------------------
// Random-test coverage equivalence (the cheap, high-volume property the old
// memsim suite contributed): arbitrary march tests, not just catalogue ones.
// ---------------------------------------------------------------------------

fn arbitrary_operation() -> impl Strategy<Value = Operation> {
    prop_oneof![
        Just(Operation::W0),
        Just(Operation::W1),
        Just(Operation::R0),
        Just(Operation::R1),
        Just(Operation::Read(None)),
        Just(Operation::Wait),
    ]
}

fn arbitrary_element() -> impl Strategy<Value = MarchElement> {
    (
        prop::sample::select(AddressOrder::ALL.to_vec()),
        prop::collection::vec(arbitrary_operation(), 1..8),
    )
        .prop_map(|(order, ops)| MarchElement::new(order, ops).expect("non-empty"))
}

fn arbitrary_test() -> impl Strategy<Value = MarchTest> {
    prop::collection::vec(arbitrary_element(), 1..6)
        .prop_map(|elements| MarchTest::new("prop", elements).expect("non-empty"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Coverage of *random* march tests is byte-identical across policies on
    /// every fault domain — the high-volume lane-level property.
    #[test]
    fn random_tests_have_identical_coverage_across_policies(
        test in arbitrary_test(),
        policy in arbitrary_policy(),
        list_index in 0usize..3,
        memory_cells in 4usize..10,
    ) {
        let list = &fault_lists()[list_index];
        let reference = Session::new(reference_policy())
            .with_memory_cells(memory_cells)
            .try_coverage(&test, list)
            .expect("scope hosts the placements");
        let report = Session::new(policy)
            .with_memory_cells(memory_cells)
            .try_coverage(&test, list)
            .expect("scope hosts the placements");
        prop_assert_eq!(report, reference, "policy {:?}", policy);
    }
}
