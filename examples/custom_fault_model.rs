//! Custom fault models: define a user-specific linked fault, build a fault list
//! around it, generate a dedicated march test and validate it — the "possibly add
//! new user-defined faults" workflow the paper's conclusions advertise.
//!
//! Run with `cargo run --release --example custom_fault_model`.

use march_gen::MarchGenerator;
use sram_fault_model::{
    CellValue, Condition, FaultEffect, FaultListBuilder, FaultPrimitive, Ffm, LinkTopology,
    LinkedFault, Operation,
};
use sram_sim::CoverageConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Define two fault primitives by hand using the <S/F/R> notation helpers.
    //    FP1: an up-transition fault <0w1/0/->.
    let tf_up = FaultPrimitive::single_cell(
        Ffm::TransitionFault,
        Condition::with_operation(CellValue::Zero, Operation::W1),
        FaultEffect::store(CellValue::Zero),
    )?;
    //    FP2: a write-destructive coupling fault <1; 0w0 / 1 / -> that masks FP1
    //    whenever the aggressor cell holds 1.
    let cfwd = FaultPrimitive::coupling(
        Ffm::WriteDestructiveCoupling,
        Condition::state(CellValue::One),
        Condition::with_operation(CellValue::Zero, Operation::W0),
        FaultEffect::store(CellValue::One),
    )?;
    println!("FP1 = {tf_up}");
    println!("FP2 = {cfwd}");

    // 2. Link them: FP2 masks FP1 (F2 = 1 = ¬F1, and FP2 is sensitized on the victim
    //    cell left at 0 by FP1). This is a two-cell linked fault of class LF2va.
    let linked = LinkedFault::link(tf_up.clone(), cfwd, LinkTopology::Lf2SingleThenCoupling)?;
    println!("linked fault: {linked}");

    // 3. Build a custom fault list: the hand-made linked fault plus, for good
    //    measure, every state fault.
    let list = FaultListBuilder::new("custom list")
        .linked(linked)
        .family(Ffm::StateFault)
        .simple(tf_up)
        .build()?;
    println!("fault list: {list}");

    // 4. Generate and verify a march test dedicated to this list.
    let (generated, coverage) = MarchGenerator::new(list.clone())
        .named("March CUSTOM")
        .generate_verified();
    println!("generated: {}", generated.test());
    println!("coverage : {coverage}");
    assert!(
        coverage.is_complete(),
        "the generated test must cover the custom list"
    );

    // 5. Cross-check with an off-the-shelf test: MATS+ is not enough for this list.
    let mats = march_test::catalog::mats_plus();
    let mats_coverage = march_gen::verify(&mats, &list, &CoverageConfig::thorough());
    println!("MATS+    : {mats_coverage}");
    Ok(())
}
