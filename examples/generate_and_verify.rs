//! End-to-end reproduction of the paper's workflow on Fault List #1 through
//! the session API: generate a march test for the complete set of single-,
//! two- and three-cell static linked faults, verify it by fault simulation,
//! shorten it with the redundancy-removal pass and compare it against the
//! published baselines of Table 1 — all on one [`Session`].
//!
//! Run with `cargo run --release --example generate_and_verify`.

use march_gen::{GeneratorConfig, SessionExt};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{ExecPolicy, Session};

fn main() {
    // One engine handle for the whole run: packed backend, all cores, full
    // 64-candidate scoring words.
    let session = Session::new(ExecPolicy::fast());

    let list = FaultList::list_1();
    println!("target fault list : {list}");
    println!();

    // Raw greedy output (the "ABL" analogue)…
    let raw = session.generate_with_config(&list, GeneratorConfig::without_redundancy_removal());
    println!("greedy result      : {}", raw.test());
    println!("                     {}", raw.report());

    // …and the reduced variant with redundancy removal (the "RABL" analogue).
    let reduced = session.generate(&list);
    println!("reduced result     : {}", reduced.test());
    println!("                     {}", reduced.report());
    println!();

    // Verify the reduced test with the fault simulator through the session.
    let coverage = session.verify(reduced.test(), &list);
    println!("verified coverage  : {coverage}");
    for escape in coverage.escapes().iter().take(5) {
        println!("  escape: {escape}");
    }
    println!();

    // The redundancy-removal pass is also callable on its own: shortening the
    // raw greedy result recovers the reduced complexity.
    let minimised = session.minimise(raw.test(), &list);
    println!("standalone removal : {minimised}");
    println!();

    // Compare against the published baselines of Table 1.
    for baseline in [catalog::test_43n(), catalog::march_sl()] {
        let ours = reduced.test().complexity() as f64;
        let theirs = baseline.complexity() as f64;
        println!(
            "vs {:<16} ({:>4}): {:+.1}% test length",
            baseline.name(),
            baseline.complexity_label(),
            100.0 * (ours - theirs) / theirs
        );
    }
}
