//! End-to-end reproduction of the paper's workflow on Fault List #1: generate a
//! march test for the complete set of single-, two- and three-cell static linked
//! faults, verify it by fault simulation and compare it against the published
//! baselines of Table 1.
//!
//! Run with `cargo run --release --example generate_and_verify`.

use march_gen::{GeneratorConfig, MarchGenerator};
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::CoverageConfig;

fn main() {
    let list = FaultList::list_1();
    println!("target fault list : {list}");
    println!();

    // Raw greedy output (the "ABL" analogue)…
    let raw =
        MarchGenerator::with_config(list.clone(), GeneratorConfig::without_redundancy_removal())
            .named("March GEN-L1")
            .generate();
    println!("greedy result      : {}", raw.test());
    println!("                     {}", raw.report());

    // …and the reduced variant with redundancy removal (the "RABL" analogue).
    let reduced = MarchGenerator::new(list.clone())
        .named("March GEN-L1R")
        .generate();
    println!("reduced result     : {}", reduced.test());
    println!("                     {}", reduced.report());
    println!();

    // Verify the reduced test with the fault simulator (thorough configuration).
    let coverage = march_gen::verify(reduced.test(), &list, &CoverageConfig::thorough());
    println!("verified coverage  : {coverage}");
    for escape in coverage.escapes().iter().take(5) {
        println!("  escape: {escape}");
    }
    println!();

    // Compare against the published baselines of Table 1.
    for baseline in [catalog::test_43n(), catalog::march_sl()] {
        let ours = reduced.test().complexity() as f64;
        let theirs = baseline.complexity() as f64;
        println!(
            "vs {:<16} ({:>4}): {:+.1}% test length",
            baseline.name(),
            baseline.complexity_label(),
            100.0 * (ours - theirs) / theirs
        );
    }
}
