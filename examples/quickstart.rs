//! Quickstart: generate a march test for the single-cell static linked faults
//! (the paper's Fault List #2), verify it with the fault simulator and compare it
//! against the published 11n March LF1 baseline.
//!
//! Run with `cargo run --release --example quickstart`.

use march_gen::MarchGenerator;
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::CoverageConfig;

fn main() {
    // 1. Pick the target fault list: the realistic single-cell static linked faults.
    let list = FaultList::list_2();
    println!("target fault list : {list}");

    // 2. Generate a march test for it (simulation-backed greedy + redundancy
    //    removal, as in the paper's Section 5).
    let generator = MarchGenerator::new(list.clone()).named("March GEN-LF1");
    let (generated, coverage) = generator.generate_verified();

    println!("generated test    : {}", generated.test());
    println!(
        "complexity        : {}",
        generated.test().complexity_label()
    );
    println!("generation report : {}", generated.report());
    println!("verified coverage : {coverage}");

    // 3. Compare against the published baseline for the same fault list.
    let baseline = catalog::march_lf1();
    let baseline_coverage = march_gen::verify(&baseline, &list, &CoverageConfig::thorough());
    println!(
        "baseline          : {} [{}] -> {}",
        baseline.name(),
        baseline.complexity_label(),
        baseline_coverage
    );

    let ours = generated.test().complexity() as f64;
    let theirs = baseline.complexity() as f64;
    println!(
        "test length vs {} : {:+.1}%",
        baseline.name(),
        100.0 * (ours - theirs) / theirs
    );
}
