//! Quickstart: build one [`Session`], generate a march test for the
//! single-cell static linked faults (the paper's Fault List #2), verify it
//! with the fault simulator and compare it against the published 11n March
//! LF1 baseline — every pipeline stage through the same engine handle.
//!
//! Run with `cargo run --release --example quickstart`.

use march_gen::SessionExt;
use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{ExecPolicy, Report, Session};

fn main() {
    // 1. One session owns the execution policy (backend, threads, batching)
    //    for the whole pipeline. `ExecPolicy::fast()` uses every core.
    let session = Session::new(ExecPolicy::fast());

    // 2. Pick the target fault list: the realistic single-cell static linked
    //    faults.
    let list = FaultList::list_2();
    println!("target fault list : {list}");

    // 3. Generate a march test for it (simulation-backed greedy + redundancy
    //    removal, as in the paper's Section 5).
    let generated = session.generate(&list);
    println!("generated test    : {}", generated.test());
    println!(
        "complexity        : {}",
        generated.test().complexity_label()
    );
    println!("generation report : {}", generated.report());

    // 4. Verify it with the fault simulator — same session, same worker pool.
    let coverage = session.verify(generated.test(), &list);
    println!("verified coverage : {coverage}");

    // 5. Compare against the published baseline for the same fault list.
    let baseline = catalog::march_lf1();
    let baseline_coverage = session.verify(&baseline, &list);
    println!(
        "baseline          : {} [{}] -> {}",
        baseline.name(),
        baseline.complexity_label(),
        baseline_coverage
    );

    let ours = generated.test().complexity() as f64;
    let theirs = baseline.complexity() as f64;
    println!(
        "test length vs {} : {:+.1}%",
        baseline.name(),
        100.0 * (ours - theirs) / theirs
    );

    // 6. Every session report also serialises to dependency-free JSON for
    //    machine consumers (the CLI exposes the same form behind `--json`).
    println!("machine readable  : {}", coverage.to_json());
}
