//! Linked-fault atlas: enumerate the realistic static linked faults targeted by the
//! paper, show how they are built from fault primitives (Definitions 6–7) and how
//! they map onto the pattern graph of Section 4.
//!
//! Run with `cargo run --example linked_fault_atlas`.

use march_gen::PatternGraph;
use sram_fault_model::{
    AddressedFaultPrimitive, FaultList, LinkTopology, LinkedAfp, Placement, TestPattern,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The two fault lists evaluated by the paper.
    let list1 = FaultList::list_1();
    let list2 = FaultList::list_2();
    println!("{list1}");
    println!("{list2}");
    println!();

    // 2. Break the lists down by topology (the LF1/LF2/LF3 taxonomy of Hamdioui).
    println!("topology histogram of Fault List #1:");
    for (topology, count) in list1.topology_histogram() {
        println!(
            "  {topology:<6} {count:>4} linked faults ({} cells each)",
            topology.cell_count()
        );
    }
    println!();

    // 3. Show a handful of linked faults in the paper's notation.
    println!("sample linked faults (FP1 -> FP2):");
    for topology in LinkTopology::ALL {
        if let Some(fault) = list1.linked().iter().find(|lf| lf.topology() == topology) {
            println!("  {fault}");
        }
    }
    println!();

    // 4. Reproduce the paper's running example: instantiate the disturb-coupling
    //    pair of equation (7) as addressed fault primitives and link them.
    let cfds_up = sram_fault_model::Ffm::DisturbCoupling
        .fault_primitives()
        .into_iter()
        .find(|fp| fp.notation() == "<0w1;0/1/->")
        .expect("realistic CFds primitive");
    let cfds_down = sram_fault_model::Ffm::DisturbCoupling
        .fault_primitives()
        .into_iter()
        .find(|fp| fp.notation() == "<0w1;1/0/->")
        .expect("realistic CFds primitive");
    let afp1 = AddressedFaultPrimitive::instantiate(&cfds_up, Placement::coupling(0, 2, 3)?)?;
    let afp2 = AddressedFaultPrimitive::instantiate(&cfds_down, Placement::coupling(1, 2, 3)?)?;
    println!("AFP1 = {afp1}");
    println!("AFP2 = {afp2}");
    let linked = LinkedAfp::try_link(afp1.clone(), afp2)?;
    println!("linked AFPs: {linked}");
    println!("TP1 = {}", TestPattern::new(afp1));
    println!();

    // 5. Build the pattern graph of Fault List #1 and report its size
    //    (|Vp| = 2^max-cells vertices plus one faulty edge per test pattern).
    let pattern_graph = PatternGraph::from_fault_list(&list1)?;
    println!(
        "pattern graph of Fault List #1: {} vertices, {} fault-free edges, {} faulty edges",
        pattern_graph.vertex_count(),
        pattern_graph.graph().edges().len(),
        pattern_graph.faulty_edges().len()
    );
    Ok(())
}
