//! Catalogue coverage survey: fault-simulate every published march test of the
//! catalogue against the unlinked realistic static faults and the paper's two
//! linked-fault lists, and print a coverage matrix.
//!
//! This extends the validation step of the paper's Section 6 to the whole
//! catalogue: it shows why linked faults need dedicated tests (March C- and even
//! March SS lose coverage on the linked lists) and confirms that the linked-fault
//! tests (March SL, March ABL/RABL/ABL1) keep it.
//!
//! Run with `cargo run --release --example catalog_coverage`.

use march_test::catalog;
use sram_fault_model::FaultList;
use sram_sim::{measure_coverage, CoverageConfig};

fn main() {
    let lists = [
        FaultList::unlinked_static(),
        FaultList::list_2(),
        FaultList::list_1(),
    ];
    let config = CoverageConfig::thorough();

    println!(
        "{:<16} {:>6} | {:>10} {:>10} {:>10}",
        "march test", "length", "unlinked", "list #2", "list #1"
    );
    println!("{}", "-".repeat(60));

    for test in catalog::all() {
        let mut cells = Vec::new();
        for list in &lists {
            let report = measure_coverage(&test, list, &config);
            cells.push(format!("{:>9.1}%", report.percent()));
        }
        println!(
            "{:<16} {:>6} | {} {} {}",
            test.name(),
            test.complexity_label(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!();
    println!("coverage is measured by fault simulation on an 8-cell memory,");
    println!("representative cell placements, both uniform data backgrounds.");
}
