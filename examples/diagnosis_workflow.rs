//! Diagnosis workflow: build a fault dictionary for a march test, "test" a faulty
//! device, look the observed syndrome up and export the test program that a
//! production flow would run — the downstream-usage path that follows march-test
//! generation.
//!
//! Run with `cargo run --release --example diagnosis_workflow`.

use march_gen::MarchGenerator;
use march_test::export;
use sram_fault_model::{FaultList, Ffm};
use sram_sim::{
    CoverageConfig, FaultDictionary, FaultSimulator, InitialState, InjectedFault, Syndrome,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a march test for the single-cell static linked faults.
    let list = FaultList::list_2();
    let generated = MarchGenerator::new(list.clone())
        .named("March GEN-LF1")
        .generate();
    let test = generated.test().clone();
    println!("generated test : {test}");
    println!();

    // 2. Build a fault dictionary: every (fault, cell) instance of the linked list
    //    plus the unlinked single-cell faults, mapped to its failure syndrome.
    let mut dictionary_space = sram_fault_model::FaultListBuilder::new("diagnosis space")
        .linked_all(list.linked().iter().cloned());
    for family in Ffm::single_cell() {
        dictionary_space = dictionary_space.family(*family);
    }
    let dictionary_space = dictionary_space.build()?;
    let config = CoverageConfig {
        memory_cells: 6,
        ..CoverageConfig::default()
    };
    let dictionary = FaultDictionary::build(&test, &dictionary_space, &config);
    println!("dictionary     : {dictionary}");
    println!(
        "undetected     : {} instances",
        dictionary.undetected().count()
    );
    println!();

    // 3. Simulate a "device under test" with a defect the test engineer does not
    //    know about: a deceptive read destructive fault on cell 3.
    let drdf = Ffm::DeceptiveReadDestructiveFault.fault_primitives()[0].clone();
    let mut device = FaultSimulator::new(6, &InitialState::AllOne)?;
    device.inject(InjectedFault::single_cell(drdf.clone(), 3, 6)?);
    let syndrome = Syndrome::observe(&test, &mut device);
    println!("observed       : {syndrome}");
    for entry in syndrome.entries().take(5) {
        println!("  {entry}");
    }
    println!();

    // 4. Look the syndrome up in the dictionary (the dictionary was built for the
    //    *linked* list; the single-cell DRDF appears inside several linked faults,
    //    so candidates localise the victim cell even if the exact defect is
    //    ambiguous).
    let candidates = dictionary.lookup(&syndrome);
    println!(
        "dictionary candidates with an identical syndrome: {}",
        candidates.len()
    );
    for candidate in candidates.iter().take(5) {
        println!("  {candidate}");
    }
    println!(
        "all candidates point at cell {:?}",
        candidates
            .iter()
            .map(|candidate| candidate.cells.victim)
            .collect::<std::collections::BTreeSet<_>>()
    );
    println!();

    // 5. Export the generated test as a C routine for the production test program.
    println!(
        "C export:\n{}",
        export::to_c_function(&test, "march_gen_lf1")
    );
    Ok(())
}
